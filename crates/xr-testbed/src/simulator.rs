//! The discrete-event ground-truth simulator of the XR pipeline.
//!
//! For every frame the simulator walks the same pipeline structure as Fig. 1,
//! but evaluates the *true hardware laws* of [`crate::laws`] instead of the
//! analytical regressions, draws stochastic queueing/wireless/measurement
//! noise, and measures energy through the simulated Monsoon monitor. The
//! output plays the role of the "Ground Truth (GT)" curves in Figs. 4–5.

use crate::laws::{DeviceBias, TrueLaws};
use crate::power::PowerMonitor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, Normal};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xr_core::Scenario;
use xr_devices::DeviceCatalog;
use xr_stats::Summary;
use xr_types::{Joules, Ratio, Result, Seconds, Segment, Watts, SPEED_OF_LIGHT};
use xr_wireless::{CoverageZone, HandoffKind, RandomWalkMobility, WirelessLink};

/// Ground-truth measurements for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthFrame {
    /// Measured latency per segment.
    pub latency: BTreeMap<Segment, Seconds>,
    /// Measured end-to-end latency (gated the same way as Eq. 1).
    pub total_latency: Seconds,
    /// Measured energy per segment.
    pub energy: BTreeMap<Segment, Joules>,
    /// Measured total energy (power-monitor integral plus thermal share).
    pub total_energy: Joules,
    /// Whether a handoff occurred during this frame.
    pub handoff_occurred: bool,
}

impl GroundTruthFrame {
    /// Latency of one segment (zero when the segment did not run).
    #[must_use]
    pub fn segment_latency(&self, segment: Segment) -> Seconds {
        self.latency.get(&segment).copied().unwrap_or(Seconds::ZERO)
    }

    /// Energy of one segment.
    #[must_use]
    pub fn segment_energy(&self, segment: Segment) -> Joules {
        self.energy.get(&segment).copied().unwrap_or(Joules::ZERO)
    }
}

/// Ground-truth measurements for a whole session (many frames).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthSession {
    frames: Vec<GroundTruthFrame>,
}

impl GroundTruthSession {
    /// The per-frame measurements.
    #[must_use]
    pub fn frames(&self) -> &[GroundTruthFrame] {
        &self.frames
    }

    /// Mean end-to-end latency over the session.
    #[must_use]
    pub fn mean_latency(&self) -> Seconds {
        if self.frames.is_empty() {
            return Seconds::ZERO;
        }
        Seconds::new(
            self.frames
                .iter()
                .map(|f| f.total_latency.as_f64())
                .sum::<f64>()
                / self.frames.len() as f64,
        )
    }

    /// Mean per-frame energy over the session.
    #[must_use]
    pub fn mean_energy(&self) -> Joules {
        if self.frames.is_empty() {
            return Joules::ZERO;
        }
        Joules::new(
            self.frames
                .iter()
                .map(|f| f.total_energy.as_f64())
                .sum::<f64>()
                / self.frames.len() as f64,
        )
    }

    /// Mean latency of one segment over the session.
    #[must_use]
    pub fn mean_segment_latency(&self, segment: Segment) -> Seconds {
        if self.frames.is_empty() {
            return Seconds::ZERO;
        }
        Seconds::new(
            self.frames
                .iter()
                .map(|f| f.segment_latency(segment).as_f64())
                .sum::<f64>()
                / self.frames.len() as f64,
        )
    }

    /// Summary statistics of the per-frame total latency (in milliseconds).
    #[must_use]
    pub fn latency_summary(&self) -> Summary {
        Summary::of(
            &self
                .frames
                .iter()
                .map(|f| f.total_latency.as_f64() * 1e3)
                .collect::<Vec<_>>(),
        )
    }

    /// Summary statistics of the per-frame energy (in millijoules).
    #[must_use]
    pub fn energy_summary(&self) -> Summary {
        Summary::of(
            &self
                .frames
                .iter()
                .map(|f| f.total_energy.as_f64() * 1e3)
                .collect::<Vec<_>>(),
        )
    }

    /// Fraction of frames that experienced a handoff.
    #[must_use]
    pub fn handoff_rate(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().filter(|f| f.handoff_occurred).count() as f64 / self.frames.len() as f64
    }
}

/// The testbed simulator.
#[derive(Debug, Clone)]
pub struct TestbedSimulator {
    laws: TrueLaws,
    monitor: PowerMonitor,
    seed: u64,
    /// True radio power levels (transmit, receive, idle-wait) — close to, but
    /// not identical with, the analytical model's defaults.
    radio_tx: Watts,
    radio_rx: Watts,
    radio_idle: Watts,
    base_power: Watts,
    thermal_fraction: f64,
    /// Relative standard deviation of per-segment measurement noise.
    noise_sigma: f64,
}

impl TestbedSimulator {
    /// Creates a simulator with the standard true laws and the Monsoon
    /// monitor.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            laws: TrueLaws::standard(),
            monitor: PowerMonitor::monsoon(),
            seed,
            radio_tx: Watts::new(1.3),
            radio_rx: Watts::new(0.95),
            radio_idle: Watts::new(0.38),
            base_power: Watts::new(0.85),
            thermal_fraction: 0.045,
            noise_sigma: 0.04,
        }
    }

    /// Overrides the true laws (used by failure-injection tests).
    #[must_use]
    pub fn with_laws(mut self, laws: TrueLaws) -> Self {
        self.laws = laws;
        self
    }

    /// Overrides the measurement-noise level.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    #[must_use]
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        self.noise_sigma = sigma;
        self
    }

    /// The true laws in effect.
    #[must_use]
    pub fn laws(&self) -> &TrueLaws {
        &self.laws
    }

    fn noise(&self, rng: &mut StdRng) -> f64 {
        if self.noise_sigma <= 0.0 {
            return 1.0;
        }
        let normal = Normal::new(0.0, self.noise_sigma).expect("valid sigma");
        normal.sample(rng).exp()
    }

    fn ms(pixels_equiv: f64, resource: f64) -> Seconds {
        Seconds::from_millis(pixels_equiv / resource.max(f64::MIN_POSITIVE))
    }

    fn edge_resource(&self, scenario: &Scenario, index: usize, client_resource: f64) -> f64 {
        let Some(server) = scenario.edge_servers.get(index) else {
            return client_resource * self.laws.edge_speedup;
        };
        if let Some(explicit) = server.compute_resource {
            return explicit;
        }
        let catalog = DeviceCatalog::table1();
        if let Ok(spec) = catalog.device(&server.name) {
            // Edge inference is GPU-dominated.
            self.laws.compute_resource(
                spec.cpu_clock,
                spec.gpu_clock,
                Ratio::new(0.15),
                DeviceBias::for_device(&server.name),
            )
        } else {
            client_resource * self.laws.edge_speedup
        }
    }

    /// Simulates one frame and returns the ground-truth measurements.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors.
    pub fn simulate_frame(
        &self,
        scenario: &Scenario,
        frame_index: u64,
    ) -> Result<GroundTruthFrame> {
        scenario.validate()?;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ frame_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let bias = DeviceBias::for_device(&scenario.client.name);
        let client = &scenario.client;
        let frame = &scenario.frame;
        let memory = client.memory_bandwidth;
        let c_true =
            self.laws
                .compute_resource(client.cpu_clock, client.gpu_clock, client.cpu_share, bias);

        let uses_local = scenario.execution.uses_client();
        let uses_edge = scenario.execution.uses_edge();
        let client_share = scenario.execution.client_share();
        let edge_share = scenario.execution.edge_share();

        let mut latency: BTreeMap<Segment, Seconds> = BTreeMap::new();

        // Frame generation (capture interval + ISP compute + memory writes).
        latency.insert(
            Segment::FrameGeneration,
            (frame.frame_rate.period()
                + Self::ms(frame.raw_size.as_f64(), c_true)
                + frame.raw_data / memory)
                * self.noise(&mut rng),
        );

        // Volumetric data generation.
        latency.insert(
            Segment::VolumetricDataGeneration,
            (Self::ms(frame.scene_size.as_f64(), c_true) + frame.volumetric_data / memory)
                * self.noise(&mut rng),
        );

        // External sensor information: per-update generation + propagation
        // with jitter; slowest sensor dominates.
        let mut ext = Seconds::ZERO;
        for sensor in &scenario.sensors {
            let mut sensor_total = Seconds::ZERO;
            for _ in 0..scenario.updates_per_frame {
                let jitter = 1.0 + rng.gen_range(-0.05..0.05);
                sensor_total += sensor.generation_frequency.period() * jitter
                    + sensor.distance / SPEED_OF_LIGHT;
            }
            ext = ext.max(sensor_total);
        }
        latency.insert(Segment::ExternalSensorInformation, ext);

        // Input-buffer waiting: each flow's sojourn time is exponentially
        // distributed with rate (µ − λ) in a stable M/M/1 queue.
        let mu = scenario.buffer.service_rate;
        let frame_rate = frame.frame_rate.as_f64();
        let mut buffering = Seconds::ZERO;
        for lambda in [
            scenario.buffer.frame_arrival_rate.unwrap_or(frame_rate),
            scenario
                .buffer
                .volumetric_arrival_rate
                .unwrap_or(frame_rate),
            scenario.external_arrival_rate(),
        ] {
            if lambda <= 0.0 || lambda >= mu {
                continue;
            }
            let exp = Exp::new(mu - lambda).expect("positive rate");
            buffering += Seconds::new(exp.sample(&mut rng));
        }

        // Frame conversion (local path only).
        latency.insert(
            Segment::FrameConversion,
            if uses_local {
                (Self::ms(frame.raw_size.as_f64(), c_true) + frame.raw_data / memory)
                    * self.noise(&mut rng)
            } else {
                Seconds::ZERO
            },
        );

        // Frame encoding (remote path only), using the true encoder law.
        let encode_work = self.laws.encoding_work(&scenario.encoding, frame, bias);
        latency.insert(
            Segment::FrameEncoding,
            if uses_edge {
                (Self::ms(encode_work, c_true) + frame.raw_data / memory) * self.noise(&mut rng)
            } else {
                Seconds::ZERO
            },
        );

        // Local inference.
        let local_complexity = self.laws.cnn_complexity(&scenario.local_cnn);
        latency.insert(
            Segment::LocalInference,
            if uses_local && client_share > 0.0 {
                (Self::ms(frame.converted_size.as_f64() * local_complexity, c_true)
                    + frame.converted_data / memory)
                    * client_share
                    * self.noise(&mut rng)
            } else {
                Seconds::ZERO
            },
        );

        // Remote inference: weighted-slowest edge server (decode + infer).
        let remote_complexity = self.laws.cnn_complexity(&scenario.remote_cnn);
        let mut remote = Seconds::ZERO;
        let mut transmission = Seconds::ZERO;
        if uses_edge && !scenario.edge_servers.is_empty() {
            let total_share: f64 = scenario.edge_servers.iter().map(|s| s.task_share).sum();
            for (i, server) in scenario.edge_servers.iter().enumerate() {
                let c_edge = self.edge_resource(scenario, i, c_true);
                let weight = if total_share > 0.0 {
                    server.task_share / total_share * edge_share
                } else {
                    0.0
                };
                let decode = Self::ms(encode_work * self.laws.decode_discount(), c_edge);
                let infer = Self::ms(frame.encoded_size.as_f64() * remote_complexity, c_edge)
                    + frame.encoded_data / server.memory_bandwidth
                    + decode;
                remote = remote.max(infer * weight * self.noise(&mut rng));

                let link = WirelessLink::new(server.technology, server.distance);
                let link = match server.throughput {
                    Some(t) => link.with_throughput(t),
                    None => link,
                };
                let wireless_jitter = 1.0 + rng.gen_range(0.0..0.12);
                let tx = link.transmission_latency(frame.encoded_data) * wireless_jitter;
                transmission = transmission.max(tx);
            }
        }
        latency.insert(Segment::RemoteInference, remote);
        latency.insert(Segment::Transmission, transmission);

        // Handoff: Bernoulli event with the mobility model's probability.
        let mut handoff_occurred = false;
        let handoff_latency = if uses_edge && scenario.mobility.speed.as_f64() > 0.0 {
            let mobility = RandomWalkMobility::new(
                scenario.mobility.speed,
                Seconds::new(0.1),
                CoverageZone::new(scenario.mobility.coverage_radius),
            );
            let p = mobility.handoff_probability(scenario.frame_window());
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                handoff_occurred = true;
                let base = match scenario.mobility.handoff_kind {
                    HandoffKind::Horizontal => Seconds::new(0.065),
                    HandoffKind::Vertical => Seconds::new(1.2),
                };
                base * self.noise(&mut rng)
            } else {
                Seconds::ZERO
            }
        } else {
            Seconds::ZERO
        };
        latency.insert(Segment::Handoff, handoff_latency);

        // Rendering: compute + memory + buffering + result delivery.
        let result_payload = xr_types::MegaBytes::new(0.01);
        let result_delivery = if uses_edge && !scenario.edge_servers.is_empty() {
            let server = &scenario.edge_servers[0];
            let link = WirelessLink::new(server.technology, server.distance);
            let link = match server.throughput {
                Some(t) => link.with_throughput(t),
                None => link,
            };
            link.transmission_latency(result_payload)
        } else {
            result_payload / memory
        };
        latency.insert(
            Segment::FrameRendering,
            (Self::ms(frame.raw_size.as_f64(), c_true) + frame.raw_data / memory)
                * self.noise(&mut rng)
                + buffering
                + result_delivery,
        );

        // Cooperation.
        latency.insert(
            Segment::XrCooperation,
            (scenario.cooperation.payload / scenario.cooperation.throughput
                + scenario.cooperation.distance / SPEED_OF_LIGHT)
                * self.noise(&mut rng),
        );

        // End-to-end total, gated exactly like Eq. 1.
        let mut total_latency = Seconds::ZERO;
        for (segment, value) in &latency {
            if !scenario.segments.contains(*segment) {
                continue;
            }
            let included = match segment {
                Segment::FrameConversion | Segment::LocalInference => uses_local,
                Segment::FrameEncoding
                | Segment::RemoteInference
                | Segment::Transmission
                | Segment::Handoff => uses_edge,
                Segment::XrCooperation => scenario.cooperation.include_in_totals,
                _ => true,
            };
            if included {
                total_latency += *value;
            }
        }

        // Energy: per-segment power levels measured by the Monsoon-style
        // monitor over the per-segment durations.
        let compute_power =
            self.laws
                .mean_power(client.cpu_clock, client.gpu_clock, client.cpu_share, bias);
        let mut energy: BTreeMap<Segment, Joules> = BTreeMap::new();
        let mut phases: Vec<(Watts, Seconds)> = Vec::new();
        let mut compute_energy = Joules::ZERO;
        for (segment, duration) in &latency {
            let included = scenario.segments.contains(*segment)
                && match segment {
                    Segment::FrameConversion | Segment::LocalInference => uses_local,
                    Segment::FrameEncoding
                    | Segment::RemoteInference
                    | Segment::Transmission
                    | Segment::Handoff => uses_edge,
                    Segment::XrCooperation => scenario.cooperation.include_in_totals,
                    _ => true,
                };
            let power = match segment {
                Segment::FrameGeneration
                | Segment::VolumetricDataGeneration
                | Segment::FrameConversion
                | Segment::FrameEncoding
                | Segment::LocalInference
                | Segment::FrameRendering => compute_power,
                Segment::ExternalSensorInformation => self.radio_rx,
                Segment::Transmission | Segment::XrCooperation | Segment::Handoff => self.radio_tx,
                Segment::RemoteInference => self.radio_idle,
            };
            let seg_energy = power * *duration;
            energy.insert(*segment, seg_energy);
            if included {
                phases.push((power, *duration));
                if matches!(
                    segment,
                    Segment::FrameGeneration
                        | Segment::VolumetricDataGeneration
                        | Segment::FrameConversion
                        | Segment::FrameEncoding
                        | Segment::LocalInference
                        | Segment::FrameRendering
                ) {
                    compute_energy += seg_energy;
                }
            }
        }
        let trace = self
            .monitor
            .record(&phases, self.base_power, self.seed ^ (frame_index << 17));
        let thermal = compute_energy * self.thermal_fraction;
        let total_energy = trace.energy() + thermal;

        Ok(GroundTruthFrame {
            latency,
            total_latency,
            energy,
            total_energy,
            handoff_occurred,
        })
    }

    /// Simulates a session of `frames` frames.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors; `frames` must be at least 1.
    pub fn simulate_session(&self, scenario: &Scenario, frames: u64) -> Result<GroundTruthSession> {
        if frames == 0 {
            return Err(xr_types::Error::invalid_parameter(
                "frames",
                "must be at least 1",
            ));
        }
        let frames = (1..=frames)
            .map(|i| self.simulate_frame(scenario, i))
            .collect::<Result<Vec<_>>>()?;
        Ok(GroundTruthSession { frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_core::{LatencyModel, Scenario};
    use xr_types::{ExecutionTarget, GigaHertz, MetersPerSecond};

    fn scenario(side: f64, clock: f64, target: ExecutionTarget) -> Scenario {
        Scenario::builder()
            .frame_side(side)
            .cpu_clock(GigaHertz::new(clock))
            .execution(target)
            .build()
            .unwrap()
    }

    #[test]
    fn simulator_is_shareable_across_campaign_workers() {
        // The xr-sweep campaign engine evaluates operating points on scoped
        // worker threads holding `&TestbedSimulator`; this locks in the
        // Send + Sync bound a future field (e.g. interior-mutable caches)
        // could silently break.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TestbedSimulator>();
        assert_send_sync::<GroundTruthSession>();
    }

    #[test]
    fn session_statistics_are_positive_and_stable() {
        let testbed = TestbedSimulator::new(1);
        let s = scenario(500.0, 2.5, ExecutionTarget::Local);
        let session = testbed.simulate_session(&s, 30).unwrap();
        assert_eq!(session.frames().len(), 30);
        assert!(session.mean_latency().as_f64() > 0.0);
        assert!(session.mean_energy().as_f64() > 0.0);
        assert!(session.latency_summary().std_dev() < session.latency_summary().mean());
        assert!(session.energy_summary().mean() > 0.0);
        assert_eq!(session.handoff_rate(), 0.0);
    }

    #[test]
    fn ground_truth_grows_with_frame_size_and_falls_with_clock() {
        let testbed = TestbedSimulator::new(2);
        for target in [ExecutionTarget::Local, ExecutionTarget::Remote] {
            let small = testbed
                .simulate_session(&scenario(300.0, 2.0, target), 20)
                .unwrap()
                .mean_latency();
            let large = testbed
                .simulate_session(&scenario(700.0, 2.0, target), 20)
                .unwrap()
                .mean_latency();
            assert!(large > small);
            let slow = testbed
                .simulate_session(&scenario(500.0, 1.0, target), 20)
                .unwrap()
                .mean_latency();
            let fast = testbed
                .simulate_session(&scenario(500.0, 3.0, target), 20)
                .unwrap()
                .mean_latency();
            assert!(fast < slow, "{target:?}: fast {fast} vs slow {slow}");
        }
    }

    #[test]
    fn remote_frames_skip_local_segments_and_vice_versa() {
        let testbed = TestbedSimulator::new(3);
        let remote = testbed
            .simulate_frame(&scenario(500.0, 2.5, ExecutionTarget::Remote), 1)
            .unwrap();
        assert_eq!(
            remote.segment_latency(Segment::LocalInference),
            Seconds::ZERO
        );
        assert!(remote.segment_latency(Segment::RemoteInference).as_f64() > 0.0);
        assert!(remote.segment_latency(Segment::Transmission).as_f64() > 0.0);
        let local = testbed
            .simulate_frame(&scenario(500.0, 2.5, ExecutionTarget::Local), 1)
            .unwrap();
        assert_eq!(
            local.segment_latency(Segment::RemoteInference),
            Seconds::ZERO
        );
        assert!(local.segment_latency(Segment::LocalInference).as_f64() > 0.0);
        assert!(local.segment_energy(Segment::LocalInference).as_f64() > 0.0);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let s = scenario(500.0, 2.0, ExecutionTarget::Remote);
        let a = TestbedSimulator::new(9).simulate_session(&s, 5).unwrap();
        let b = TestbedSimulator::new(9).simulate_session(&s, 5).unwrap();
        let c = TestbedSimulator::new(10).simulate_session(&s, 5).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn analytical_model_tracks_ground_truth_within_ten_percent() {
        // The published model (not even refit) should land in the right
        // ballpark because both follow the same pipeline structure.
        let testbed = TestbedSimulator::new(4);
        let model = LatencyModel::published();
        let s = scenario(500.0, 2.5, ExecutionTarget::Local);
        let gt = testbed.simulate_session(&s, 40).unwrap().mean_latency();
        let predicted = model.analyze(&s).unwrap().total();
        let rel = (gt.as_f64() - predicted.as_f64()).abs() / gt.as_f64();
        assert!(
            rel < 0.5,
            "relative gap {rel} too large (gt {gt}, model {predicted})"
        );
    }

    #[test]
    fn mobile_sessions_record_handoffs() {
        let testbed = TestbedSimulator::new(5);
        let s = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .mobility(xr_core::MobilityConfig {
                speed: MetersPerSecond::new(20.0),
                coverage_radius: xr_types::Meters::new(30.0),
                handoff_kind: HandoffKind::Vertical,
            })
            .build()
            .unwrap();
        let session = testbed.simulate_session(&s, 60).unwrap();
        assert!(session.handoff_rate() > 0.0);
        assert!(session.handoff_rate() < 1.0);
    }

    #[test]
    fn zero_frames_rejected_and_noise_control() {
        let testbed = TestbedSimulator::new(6).with_noise(0.0);
        let s = scenario(400.0, 2.0, ExecutionTarget::Local);
        assert!(testbed.simulate_session(&s, 0).is_err());
        let a = testbed.simulate_frame(&s, 1).unwrap();
        let b = testbed.simulate_frame(&s, 2).unwrap();
        // With zero measurement noise only the queueing/jitter terms differ.
        let gap = (a.segment_latency(Segment::FrameGeneration).as_f64()
            - b.segment_latency(Segment::FrameGeneration).as_f64())
        .abs();
        assert!(gap < 1e-12);
        assert!(testbed.laws().edge_speedup > 1.0);
    }

    #[test]
    fn energy_totals_include_base_and_thermal_overhead() {
        let testbed = TestbedSimulator::new(7);
        let s = scenario(500.0, 2.5, ExecutionTarget::Local);
        let frame = testbed.simulate_frame(&s, 1).unwrap();
        let sum_segments: f64 = Segment::ALL
            .iter()
            .filter(|seg| s.segments.contains(**seg))
            .map(|seg| frame.segment_energy(*seg).as_f64())
            .sum();
        // The measured total includes base power and thermal conversion, so
        // it must exceed the bare sum of included compute/radio segments that
        // actually ran (local segments only here).
        assert!(frame.total_energy.as_f64() > 0.5 * sum_segments);
    }
}
