//! Mobility figure: ground-truth latency and handoff rate over a device
//! speed × coverage radius grid, replicated with 95 % confidence intervals
//! through the shared campaign engine.

use xr_experiments::mobility_experiments::{mobility_sweep, FIG_MOBILITY_HEADER};
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let points = mobility_sweep(&ctx).expect("mobility sweep failed");
    let cells: Vec<Vec<String>> = points.iter().map(|p| p.cells()).collect();
    output::print_experiment(
        "Mobility — latency and handoff rate vs speed × coverage radius",
        &FIG_MOBILITY_HEADER,
        &cells,
        "fig_mobility.csv",
    );
    let handoffs: usize = points
        .iter()
        .filter(|p| p.row.gt_handoff_rate > 0.0)
        .count();
    println!(
        "{} operating points ({} with nonzero handoff rate) evaluated with {} worker(s)",
        points.len(),
        handoffs,
        ctx.runner().workers()
    );
}
