//! The FACT baseline (Liu et al., "An edge network orchestrator for mobile
//! augmented reality", INFOCOM 2018), as characterised in Section VIII-D of
//! the paper.
//!
//! FACT models the service latency of an edge-assisted AR request as
//!
//! ```text
//! L_FACT = L_comp(client prep) + L_wireless + L_core + L_comp(server)
//! ```
//!
//! with each computation term expressed as task cycles divided by the
//! processing speed (CPU clock only). Crucially — and this is the gap the
//! paper exploits — FACT does **not** model the GPU share, memory bandwidth,
//! codec parameters, frame-rate capture delay, input-buffer queueing, or the
//! CNN's structure; its energy model is a single active-power constant times
//! the latency.

use crate::BaselineModel;
use serde::{Deserialize, Serialize};
use xr_core::Scenario;
use xr_types::{Joules, Result, Seconds, Watts};
use xr_wireless::WirelessLink;

/// The FACT analytical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactModel {
    /// Cycles of work per pixel of the captured frame (client-side
    /// preparation: capture, pre-processing, tracking).
    pub client_cycles_per_pixel: f64,
    /// Cycles of work per pixel of the inference task.
    pub inference_cycles_per_pixel: f64,
    /// Ratio of server processing speed to the client CPU clock.
    pub server_speedup: f64,
    /// Fixed core-network latency between the AP and the edge server.
    pub core_network_delay: Seconds,
    /// The single active-power constant of FACT's energy model.
    pub active_power: Watts,
    /// Multiplicative latency calibration factor (set by
    /// [`BaselineModel::calibrate`]).
    latency_scale: f64,
    /// Multiplicative energy calibration factor.
    energy_scale: f64,
}

impl FactModel {
    /// Literature-style default constants before calibration.
    ///
    /// "Pixel" here is the paper's frame-size parameter (the 300–700 pixel²
    /// sweep value), so the per-pixel cycle counts are large: they fold in a
    /// whole tensor row's worth of work.
    #[must_use]
    pub fn new() -> Self {
        Self {
            client_cycles_per_pixel: 4.0e5,
            inference_cycles_per_pixel: 2.4e6,
            server_speedup: 10.0,
            core_network_delay: Seconds::from_millis(5.0),
            active_power: Watts::new(2.2),
            latency_scale: 1.0,
            energy_scale: 1.0,
        }
    }

    fn raw_latency(&self, scenario: &Scenario) -> Result<Seconds> {
        scenario.validate()?;
        let pixels = scenario.frame.raw_size.as_f64();
        let client_hz = scenario.client.cpu_clock.as_f64() * 1e9;
        let client_prep = Seconds::new(pixels * self.client_cycles_per_pixel / client_hz);

        let inference_cycles = pixels * self.inference_cycles_per_pixel;
        if scenario.execution.uses_edge() && !scenario.edge_servers.is_empty() {
            let server = &scenario.edge_servers[0];
            let link = WirelessLink::new(server.technology, server.distance);
            let link = match server.throughput {
                Some(t) => link.with_throughput(t),
                None => link,
            };
            // FACT sends the (encoded) frame up and ignores propagation
            // delay; the serialisation term is kept.
            let wireless = Seconds::new(
                scenario.frame.encoded_data.to_megabits() / link.throughput().as_f64(),
            );
            let server_compute =
                Seconds::new(inference_cycles / (client_hz * self.server_speedup.max(1e-9)));
            Ok(client_prep + wireless + self.core_network_delay + server_compute)
        } else {
            let local_compute = Seconds::new(inference_cycles / client_hz);
            Ok(client_prep + local_compute)
        }
    }
}

impl Default for FactModel {
    fn default() -> Self {
        Self::new()
    }
}

impl BaselineModel for FactModel {
    fn name(&self) -> &'static str {
        "FACT"
    }

    fn predict_latency(&self, scenario: &Scenario) -> Result<Seconds> {
        Ok(self.raw_latency(scenario)? * self.latency_scale)
    }

    fn predict_energy(&self, scenario: &Scenario) -> Result<Joules> {
        // FACT's energy model: a single active power over the whole service
        // latency, regardless of which stage is running.
        let latency = self.predict_latency(scenario)?;
        Ok(self.active_power * latency * self.energy_scale)
    }

    fn calibrate(
        &mut self,
        scenario: &Scenario,
        observed_latency: Seconds,
        observed_energy: Joules,
    ) -> Result<()> {
        let raw_latency = self.raw_latency(scenario)?;
        if raw_latency.is_positive() && observed_latency.is_positive() {
            self.latency_scale = observed_latency / raw_latency;
        }
        let raw_energy = self.active_power.as_f64() * raw_latency.as_f64() * self.latency_scale;
        if raw_energy > 0.0 && observed_energy.is_positive() {
            self.energy_scale = observed_energy.as_f64() / raw_energy;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_types::{ExecutionTarget, GigaHertz};

    fn scenario(side: f64, clock: f64, target: ExecutionTarget) -> Scenario {
        Scenario::builder()
            .frame_side(side)
            .cpu_clock(GigaHertz::new(clock))
            .execution(target)
            .build()
            .unwrap()
    }

    #[test]
    fn latency_grows_with_frame_size_and_falls_with_clock() {
        let fact = FactModel::new();
        let small = fact
            .predict_latency(&scenario(300.0, 2.0, ExecutionTarget::Remote))
            .unwrap();
        let large = fact
            .predict_latency(&scenario(700.0, 2.0, ExecutionTarget::Remote))
            .unwrap();
        assert!(large > small);
        let fast = fact
            .predict_latency(&scenario(500.0, 3.0, ExecutionTarget::Remote))
            .unwrap();
        let slow = fact
            .predict_latency(&scenario(500.0, 1.0, ExecutionTarget::Remote))
            .unwrap();
        assert!(fast < slow);
    }

    #[test]
    fn remote_offload_beats_local_inference_for_fact() {
        let fact = FactModel::new();
        let local = fact
            .predict_latency(&scenario(500.0, 2.0, ExecutionTarget::Local))
            .unwrap();
        let remote = fact
            .predict_latency(&scenario(500.0, 2.0, ExecutionTarget::Remote))
            .unwrap();
        // With a 10× server and moderate transmission cost the offload wins.
        assert!(remote < local);
    }

    #[test]
    fn energy_is_power_times_latency() {
        let fact = FactModel::new();
        let s = scenario(500.0, 2.5, ExecutionTarget::Remote);
        let latency = fact.predict_latency(&s).unwrap();
        let energy = fact.predict_energy(&s).unwrap();
        assert!((energy.as_f64() - 2.2 * latency.as_f64()).abs() < 1e-12);
    }

    #[test]
    fn calibration_matches_the_reference_point_exactly() {
        let mut fact = FactModel::new();
        let reference = scenario(500.0, 2.0, ExecutionTarget::Remote);
        fact.calibrate(&reference, Seconds::new(0.8), Joules::new(1.4))
            .unwrap();
        let latency = fact.predict_latency(&reference).unwrap();
        let energy = fact.predict_energy(&reference).unwrap();
        assert!((latency.as_f64() - 0.8).abs() < 1e-9);
        assert!((energy.as_f64() - 1.4).abs() < 1e-9);
    }

    #[test]
    fn calibration_does_not_fix_other_operating_points() {
        // FACT misses the constant capture/buffering terms, so calibrating at
        // 500 px² leaves residual error at 300 px².
        let mut fact = FactModel::new();
        let reference = scenario(500.0, 2.0, ExecutionTarget::Remote);
        fact.calibrate(&reference, Seconds::new(0.8), Joules::new(1.4))
            .unwrap();
        let other = fact
            .predict_latency(&scenario(300.0, 2.0, ExecutionTarget::Remote))
            .unwrap();
        assert!(other < Seconds::new(0.8));
        assert!(other.as_f64() > 0.0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(FactModel::new().name(), "FACT");
        assert_eq!(FactModel::default(), FactModel::new());
    }
}
