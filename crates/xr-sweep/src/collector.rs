//! In-order streaming collection of out-of-order campaign results.

use std::collections::BTreeMap;

/// Reorders results that complete out of order back into point order,
/// emitting each contiguous prefix to a sink the moment it is complete.
///
/// This is the streaming bridge between a parallel campaign and an
/// append-only artifact such as a CSV file: workers push `(index, row)` pairs
/// as they finish, the collector holds back anything ahead of a gap, and the
/// sink only ever observes rows in index order — so the written artifact is
/// byte-identical to a sequential run.
///
/// The hold-back window can be **bounded** ([`InOrderCollector::with_cap`]):
/// one slow point must not let faster workers race ahead and buffer an
/// entire campaign in memory. A bounded collector never exceeds its cap —
/// callers consult [`InOrderCollector::accepts`] before pushing and apply
/// backpressure (block the producing worker) when the window is full, as
/// [`crate::CampaignRunner`]'s streaming paths do.
#[derive(Debug)]
pub struct InOrderCollector<R, F: FnMut(usize, R)> {
    next: usize,
    pending: BTreeMap<usize, R>,
    /// Maximum held-back results; `None` is unbounded.
    cap: Option<usize>,
    /// Largest `pending` size ever observed — the memory high-water mark.
    high_water: usize,
    sink: F,
}

impl<R, F: FnMut(usize, R)> InOrderCollector<R, F> {
    /// A collector forwarding in-order results to `sink`, with an unbounded
    /// hold-back window.
    pub fn new(sink: F) -> Self {
        Self {
            next: 0,
            pending: BTreeMap::new(),
            cap: None,
            high_water: 0,
            sink,
        }
    }

    /// Bounds the hold-back window to at most `cap` buffered results
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap.max(1));
        self
    }

    /// The configured hold-back bound; `None` is unbounded.
    #[must_use]
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    /// `true` when the result for `index` may be pushed without growing the
    /// buffer past the cap. The next-in-order index is always accepted — it
    /// flows straight through to the sink (draining the buffer), so
    /// backpressure can never deadlock the one worker able to fill the gap.
    #[must_use]
    pub fn accepts(&self, index: usize) -> bool {
        index == self.next || self.cap.is_none_or(|cap| self.pending.len() < cap)
    }

    /// Accepts the result for `index`, emitting it (and any directly
    /// following held-back results) if it extends the contiguous prefix.
    ///
    /// # Panics
    ///
    /// Panics if `index` was already emitted or is already pending — a
    /// duplicate index means the campaign evaluated a point twice — or if
    /// the push overflows a bounded window (callers gate on
    /// [`InOrderCollector::accepts`]).
    pub fn push(&mut self, index: usize, value: R) {
        assert!(
            index >= self.next,
            "duplicate result for already-emitted point {index}"
        );
        assert!(
            self.accepts(index),
            "hold-back window overflow: point {index} pushed with {} already buffered (cap {:?})",
            self.pending.len(),
            self.cap
        );
        if index == self.next {
            // The gap-filler flows straight through without touching the
            // buffer, so a bounded window never transiently exceeds its cap.
            (self.sink)(self.next, value);
            self.next += 1;
        } else {
            let duplicate = self.pending.insert(index, value);
            assert!(duplicate.is_none(), "duplicate result for point {index}");
            self.high_water = self.high_water.max(self.pending.len());
        }
        while let Some(value) = self.pending.remove(&self.next) {
            (self.sink)(self.next, value);
            self.next += 1;
        }
    }

    /// Index of the next result the sink is waiting for.
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.next
    }

    /// Number of results currently held back waiting for a gap to fill.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The largest number of results ever held back at once.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// `true` when nothing is held back waiting for a gap to fill.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_pushes_emit_in_order() {
        let seen = std::cell::RefCell::new(Vec::new());
        let mut collector =
            InOrderCollector::new(|i: usize, v: &str| seen.borrow_mut().push((i, v)));
        collector.push(2, "c");
        collector.push(0, "a");
        assert_eq!(*seen.borrow(), vec![(0, "a")]);
        assert!(!collector.is_drained());
        collector.push(1, "b");
        assert_eq!(*seen.borrow(), vec![(0, "a"), (1, "b"), (2, "c")]);
        assert!(collector.is_drained());
        assert_eq!(collector.emitted(), 3);
        assert_eq!(collector.high_water(), 1, "only point 2 was ever buffered");
    }

    #[test]
    #[should_panic(expected = "duplicate result")]
    fn duplicate_indices_panic() {
        let mut collector = InOrderCollector::new(|_, _: u8| {});
        collector.push(0, 1);
        collector.push(0, 2);
    }

    #[test]
    fn bounded_windows_gate_admission_but_never_the_gap_filler() {
        let mut collector = InOrderCollector::new(|_, _: u8| {}).with_cap(2);
        assert_eq!(collector.cap(), Some(2));
        collector.push(3, 0);
        collector.push(1, 0);
        assert_eq!(collector.pending_len(), 2);
        // The window is full: run-ahead indices are refused…
        assert!(!collector.accepts(2));
        assert!(!collector.accepts(9));
        // …but the next-in-order index always gets through (it drains).
        assert!(collector.accepts(0));
        collector.push(0, 0);
        assert_eq!(collector.emitted(), 2);
        assert_eq!(collector.pending_len(), 1);
        assert!(collector.accepts(2));
        assert_eq!(collector.high_water(), 2);
    }

    #[test]
    #[should_panic(expected = "hold-back window overflow")]
    fn overflowing_a_bounded_window_panics() {
        let mut collector = InOrderCollector::new(|_, _: u8| {}).with_cap(1);
        collector.push(1, 0);
        collector.push(2, 0);
    }

    #[test]
    fn caps_clamp_to_one() {
        let collector = InOrderCollector::new(|_, _: u8| {}).with_cap(0);
        assert_eq!(collector.cap(), Some(1));
    }
}
