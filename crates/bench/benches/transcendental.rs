//! Transcendental-kernel throughput: the draw layer's polynomial
//! `ln`/`exp`/`sincos` kernels against the platform libm, scalar and as
//! column transforms — the hot path PR-8 vectorized.
//!
//! Three tiers:
//!
//! * `scalar/*` — one kernel call vs one `std` (libm) call over a column
//!   of sampler-domain inputs, timing pure function cost.
//! * `column/*` — the `rand_distr::column` fills on raw word columns: the
//!   runtime-dispatched entry (AVX2 on this host) vs the forced portable
//!   pass vs a per-sample scalar loop emulating the pre-PR-8 scheme
//!   (stateless `Normal::sample`, one discarded variate per draw).
//! * `pipeline/noise` — the full kept-pair noise column (two lognormal
//!   factors from one word-pair column), the shape `batch_generate` runs
//!   per batch.
//!
//! Measured numbers live in `BENCH_transcendental.json` at the repository
//! root. The acceptance bar is the engine-level one in
//! `BENCH_frame_batch.json` (batched sessions ≥ 1.5× the PR-5/PR-7 means);
//! this bench localizes where that speedup comes from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rand_distr::{column, math, Distribution, Normal};

const LEN: usize = 4096;

fn words(seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..LEN).map(|_| rng.next_u64()).collect()
}

/// Sampler-domain inputs: `u1` clamped away from zero (ln), `σ·z`-sized
/// exponents (exp), Box–Muller angles (sincos).
fn unit_inputs() -> Vec<f64> {
    words(7)
        .into_iter()
        .map(|w| rand::unit_f64_from_word(w).max(f64::MIN_POSITIVE))
        .collect()
}

fn transcendental(c: &mut Criterion) {
    let units = unit_inputs();
    let exponents: Vec<f64> = units.iter().map(|u| 0.25 * (u - 0.5)).collect();
    let angles: Vec<f64> = units.iter().map(|u| core::f64::consts::TAU * u).collect();

    let mut group = c.benchmark_group("transcendental/scalar");
    group.bench_function("ln/kernel", |b| {
        b.iter(|| units.iter().map(|&u| math::ln(u)).sum::<f64>())
    });
    group.bench_function("ln/std", |b| {
        b.iter(|| units.iter().map(|&u| u.ln()).sum::<f64>())
    });
    group.bench_function("exp/kernel", |b| {
        b.iter(|| exponents.iter().map(|&x| math::exp(x)).sum::<f64>())
    });
    group.bench_function("exp/std", |b| {
        b.iter(|| exponents.iter().map(|&x| x.exp()).sum::<f64>())
    });
    group.bench_function("sincos/kernel", |b| {
        b.iter(|| {
            angles
                .iter()
                .map(|&t| {
                    let (s, c) = math::sincos(t);
                    s + c
                })
                .sum::<f64>()
        })
    });
    group.bench_function("sincos/std", |b| {
        b.iter(|| angles.iter().map(|&t| t.sin() + t.cos()).sum::<f64>())
    });
    group.finish();

    let normal = Normal::new(0.0, 0.05).unwrap();
    let wa = words(11);
    let wb = words(12);
    let mut out = vec![0.0; LEN];
    let mut out_sin = vec![0.0; LEN];

    let mut group = c.benchmark_group("transcendental/column");
    group.bench_function("lognormal/dispatched", |b| {
        b.iter(|| {
            column::fill_lognormal(&normal, &wa, &wb, &mut out);
            black_box(out[LEN - 1])
        })
    });
    group.bench_function("lognormal/portable", |b| {
        b.iter(|| {
            column::fill_lognormal_portable(&normal, &wa, &wb, &mut out);
            black_box(out[LEN - 1])
        })
    });
    group.bench_function("lognormal/per_sample_std", |b| {
        // The pre-PR-8 scheme: a stateless sample per element (sine half
        // discarded) through the libm.
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            for slot in &mut out {
                *slot = normal.sample(&mut rng).exp();
            }
            black_box(out[LEN - 1])
        })
    });
    group.finish();

    let mut group = c.benchmark_group("transcendental/pipeline");
    group.bench_function("noise_pair/dispatched", |b| {
        b.iter(|| {
            column::fill_lognormal_pair(&normal, &wa, &wb, &mut out, &mut out_sin);
            black_box(out[LEN - 1] + out_sin[LEN - 1])
        })
    });
    group.bench_function("noise_pair/portable", |b| {
        b.iter(|| {
            column::fill_lognormal_pair_portable(&normal, &wa, &wb, &mut out, &mut out_sin);
            black_box(out[LEN - 1] + out_sin[LEN - 1])
        })
    });
    group.finish();
}

criterion_group!(benches, transcendental);
criterion_main!(benches);
