//! The LEAF baseline (Wang et al., "LEAF + AIO: Edge-assisted energy-aware
//! object detection for mobile augmented reality", IEEE TMC 2023), as
//! characterised in Section VIII-D of the paper.
//!
//! LEAF improves on FACT by breaking the AR pipeline into segments (capture,
//! conversion, encoding, inference, rendering, transmission) and modelling
//! each one separately — the same philosophy as the proposed framework — but
//! it keeps the simplified cycles-per-pixel computation model: no
//! memory-bandwidth terms, no CPU/GPU utilisation split, no codec-parameter
//! regression, no input-buffer queueing, and a per-state constant-power
//! energy model.

use crate::BaselineModel;
use serde::{Deserialize, Serialize};
use xr_core::Scenario;
use xr_types::{Joules, Result, Seconds, Watts};
use xr_wireless::WirelessLink;

/// The LEAF analytical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafModel {
    /// Cycles per pixel for frame capture / preview processing.
    pub capture_cycles_per_pixel: f64,
    /// Cycles per pixel for YUV→RGB conversion and scaling.
    pub conversion_cycles_per_pixel: f64,
    /// Cycles per pixel for H.264 encoding (constant — LEAF does not model
    /// codec parameters).
    pub encoding_cycles_per_pixel: f64,
    /// Cycles per pixel for CNN inference on the client.
    pub inference_cycles_per_pixel: f64,
    /// Cycles per pixel for rendering/composition.
    pub rendering_cycles_per_pixel: f64,
    /// Ratio of edge-server processing speed to the client CPU clock.
    pub server_speedup: f64,
    /// Power while computing on-device.
    pub compute_power: Watts,
    /// Power while transmitting.
    pub transmit_power: Watts,
    /// Power while waiting for the edge server.
    pub idle_power: Watts,
    latency_scale: f64,
    energy_scale: f64,
}

impl LeafModel {
    /// Literature-style default constants before calibration.
    ///
    /// "Pixel" here is the paper's frame-size parameter (the 300–700 pixel²
    /// sweep value), so the per-pixel cycle counts are large: they fold in a
    /// whole tensor row's worth of work.
    #[must_use]
    pub fn new() -> Self {
        Self {
            capture_cycles_per_pixel: 1.6e5,
            conversion_cycles_per_pixel: 1.2e5,
            encoding_cycles_per_pixel: 9.0e5,
            inference_cycles_per_pixel: 1.1e6,
            rendering_cycles_per_pixel: 2.0e5,
            server_speedup: 10.0,
            compute_power: Watts::new(2.6),
            transmit_power: Watts::new(1.3),
            idle_power: Watts::new(0.4),
            latency_scale: 1.0,
            energy_scale: 1.0,
        }
    }

    fn client_hz(scenario: &Scenario) -> f64 {
        scenario.client.cpu_clock.as_f64() * 1e9
    }

    fn cycles_latency(cycles_per_pixel: f64, pixels: f64, hz: f64) -> Seconds {
        Seconds::new(pixels * cycles_per_pixel / hz)
    }

    /// LEAF's per-segment latency breakdown: (compute segments on the client,
    /// transmission, edge compute + wait).
    fn raw_components(&self, scenario: &Scenario) -> Result<(Seconds, Seconds, Seconds)> {
        scenario.validate()?;
        let pixels = scenario.frame.raw_size.as_f64();
        let hz = Self::client_hz(scenario);

        // Client-side compute: capture (plus the frame interval), rendering,
        // and either conversion+inference (local) or encoding (remote).
        let mut client = scenario.frame.frame_rate.period()
            + Self::cycles_latency(self.capture_cycles_per_pixel, pixels, hz)
            + Self::cycles_latency(self.rendering_cycles_per_pixel, pixels, hz);

        let mut transmission = Seconds::ZERO;
        let mut edge = Seconds::ZERO;

        if scenario.execution.uses_edge() && !scenario.edge_servers.is_empty() {
            client += Self::cycles_latency(self.encoding_cycles_per_pixel, pixels, hz);
            let server = &scenario.edge_servers[0];
            let link = WirelessLink::new(server.technology, server.distance);
            let link = match server.throughput {
                Some(t) => link.with_throughput(t),
                None => link,
            };
            transmission = link.transmission_latency(scenario.frame.encoded_data);
            edge = Self::cycles_latency(
                self.inference_cycles_per_pixel,
                pixels,
                hz * self.server_speedup.max(1e-9),
            );
        } else {
            client += Self::cycles_latency(self.conversion_cycles_per_pixel, pixels, hz)
                + Self::cycles_latency(self.inference_cycles_per_pixel, pixels, hz);
        }

        Ok((client, transmission, edge))
    }
}

impl Default for LeafModel {
    fn default() -> Self {
        Self::new()
    }
}

impl BaselineModel for LeafModel {
    fn name(&self) -> &'static str {
        "LEAF"
    }

    fn predict_latency(&self, scenario: &Scenario) -> Result<Seconds> {
        let (client, transmission, edge) = self.raw_components(scenario)?;
        Ok((client + transmission + edge) * self.latency_scale)
    }

    fn predict_energy(&self, scenario: &Scenario) -> Result<Joules> {
        let (client, transmission, edge) = self.raw_components(scenario)?;
        let energy = self.compute_power * client
            + self.transmit_power * transmission
            + self.idle_power * edge;
        Ok(energy * (self.latency_scale * self.energy_scale))
    }

    fn calibrate(
        &mut self,
        scenario: &Scenario,
        observed_latency: Seconds,
        observed_energy: Joules,
    ) -> Result<()> {
        let raw_latency = {
            let (c, t, e) = self.raw_components(scenario)?;
            c + t + e
        };
        if raw_latency.is_positive() && observed_latency.is_positive() {
            self.latency_scale = observed_latency / raw_latency;
        }
        let scaled_energy = {
            let (c, t, e) = self.raw_components(scenario)?;
            (self.compute_power * c + self.transmit_power * t + self.idle_power * e).as_f64()
                * self.latency_scale
        };
        if scaled_energy > 0.0 && observed_energy.is_positive() {
            self.energy_scale = observed_energy.as_f64() / scaled_energy;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::FactModel;
    use xr_types::{ExecutionTarget, GigaHertz};

    fn scenario(side: f64, clock: f64, target: ExecutionTarget) -> Scenario {
        Scenario::builder()
            .frame_side(side)
            .cpu_clock(GigaHertz::new(clock))
            .execution(target)
            .build()
            .unwrap()
    }

    #[test]
    fn latency_is_monotone_in_frame_size_and_clock() {
        let leaf = LeafModel::new();
        let small = leaf
            .predict_latency(&scenario(300.0, 2.0, ExecutionTarget::Remote))
            .unwrap();
        let large = leaf
            .predict_latency(&scenario(700.0, 2.0, ExecutionTarget::Remote))
            .unwrap();
        assert!(large > small);
        let fast = leaf
            .predict_latency(&scenario(500.0, 3.0, ExecutionTarget::Local))
            .unwrap();
        let slow = leaf
            .predict_latency(&scenario(500.0, 1.0, ExecutionTarget::Local))
            .unwrap();
        assert!(fast < slow);
    }

    #[test]
    fn energy_splits_by_activity_state() {
        let leaf = LeafModel::new();
        let local = scenario(500.0, 2.0, ExecutionTarget::Local);
        let remote = scenario(500.0, 2.0, ExecutionTarget::Remote);
        let e_local = leaf.predict_energy(&local).unwrap();
        let e_remote = leaf.predict_energy(&remote).unwrap();
        assert!(e_local.as_f64() > 0.0 && e_remote.as_f64() > 0.0);
        // Remote shifts inference cycles to the cheap idle-power state, so
        // per LEAF the remote energy is lower for equal frame sizes.
        assert!(e_remote < e_local);
    }

    #[test]
    fn calibration_pins_the_reference_point() {
        let mut leaf = LeafModel::new();
        let reference = scenario(500.0, 2.0, ExecutionTarget::Remote);
        leaf.calibrate(&reference, Seconds::new(0.75), Joules::new(1.2))
            .unwrap();
        let latency = leaf.predict_latency(&reference).unwrap();
        let energy = leaf.predict_energy(&reference).unwrap();
        assert!((latency.as_f64() - 0.75).abs() < 1e-9);
        assert!((energy.as_f64() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn leaf_includes_the_frame_interval_fact_does_not() {
        // LEAF's per-segment structure captures the 1/fps capture delay;
        // FACT's lumped model does not, so at a tiny frame size LEAF predicts
        // a larger floor latency.
        let leaf = LeafModel::new();
        let fact = FactModel::new();
        let tiny = scenario(100.0, 3.0, ExecutionTarget::Remote);
        let l_leaf = leaf.predict_latency(&tiny).unwrap();
        let l_fact = fact.predict_latency(&tiny).unwrap();
        assert!(l_leaf.as_f64() > 1.0 / 30.0);
        assert!(l_leaf > l_fact);
    }

    #[test]
    fn name_and_default() {
        assert_eq!(LeafModel::new().name(), "LEAF");
        assert_eq!(LeafModel::default(), LeafModel::new());
    }
}
