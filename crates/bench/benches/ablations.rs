//! Ablation benchmarks for the framework's modelling design choices:
//! each ablation removes one modelling ingredient of the proposed framework
//! and reports how far the prediction drifts from the ground truth, next to
//! the runtime cost of the variant.

use bench::{bench_context, bench_scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xr_core::{AoiModel, LatencyModel, SensorConfig};
use xr_types::{ExecutionTarget, Hertz, Meters, Seconds};

fn latency_model_variants(c: &mut Criterion) {
    let scenario = bench_scenario(500.0, ExecutionTarget::Remote);
    let full = LatencyModel::published();
    let no_memory = LatencyModel::published().without_memory_terms();
    let no_buffering = LatencyModel::published().without_buffering();

    let mut group = c.benchmark_group("ablations/latency_model_variants");
    group.bench_function("full_model", |b| {
        b.iter(|| black_box(full.analyze(&scenario).unwrap().total()))
    });
    group.bench_function("without_memory_terms", |b| {
        b.iter(|| black_box(no_memory.analyze(&scenario).unwrap().total()))
    });
    group.bench_function("without_buffering", |b| {
        b.iter(|| black_box(no_buffering.analyze(&scenario).unwrap().total()))
    });
    group.finish();
}

fn ablation_accuracy_report(c: &mut Criterion) {
    // Not a timing-sensitive benchmark: it runs once per sample but its real
    // output is the printed accuracy drop of each ablation, which feeds
    // EXPERIMENTS.md.
    let ctx = bench_context();
    let scenario = bench_scenario(500.0, ExecutionTarget::Remote);
    let gt = ctx
        .testbed()
        .simulate_session(&scenario, 30)
        .unwrap()
        .mean_latency()
        .as_f64();
    let report = |name: &str, model: &LatencyModel| {
        let predicted = model.analyze(&scenario).unwrap().total().as_f64();
        let err = ((gt - predicted) / gt).abs() * 100.0;
        println!("ablation `{name}`: predicted {predicted:.4} s vs GT {gt:.4} s ({err:.2}% error)");
    };
    report("full", &LatencyModel::published());
    report(
        "no-memory-terms",
        &LatencyModel::published().without_memory_terms(),
    );
    report(
        "no-buffering",
        &LatencyModel::published().without_buffering(),
    );

    let mut group = c.benchmark_group("ablations/accuracy_report");
    group.sample_size(10);
    group.bench_function("evaluate_all_variants", |b| {
        b.iter(|| {
            let full = LatencyModel::published()
                .analyze(&scenario)
                .unwrap()
                .total();
            let ablated = LatencyModel::published()
                .without_memory_terms()
                .analyze(&scenario)
                .unwrap()
                .total();
            black_box((full, ablated))
        })
    });
    group.finish();
}

fn aoi_queueing_variants(c: &mut Criterion) {
    let sensor = SensorConfig::new("bench", Hertz::new(100.0), Meters::new(30.0));
    let approx = AoiModel::published();
    let exact = AoiModel::with_exact_queueing();
    let mut group = c.benchmark_group("ablations/aoi_queueing_term");
    group.bench_function("sojourn_approximation", |b| {
        b.iter(|| {
            black_box(
                approx
                    .analyze_sensor(&sensor, 2_000.0, Seconds::from_millis(30.0), 6)
                    .unwrap(),
            )
        })
    });
    group.bench_function("exact_mm1_aoi", |b| {
        b.iter(|| {
            black_box(
                exact
                    .analyze_sensor(&sensor, 2_000.0, Seconds::from_millis(30.0), 6)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    latency_model_variants,
    ablation_accuracy_report,
    aoi_queueing_variants
);
criterion_main!(benches);
