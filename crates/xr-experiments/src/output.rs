//! Console-table and CSV output helpers shared by the experiment binaries.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory under which experiment artifacts (CSV files) are written.
#[must_use]
pub fn artifact_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// Writes a CSV artifact (header + rows) under [`artifact_dir`], creating the
/// directory if needed. Returns the path written, or `None` if the filesystem
/// refused (experiments still print to stdout in that case).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
    let dir = artifact_dir();
    fs::create_dir_all(&dir).ok()?;
    let path = dir.join(name);
    let mut file = fs::File::create(&path).ok()?;
    writeln!(file, "{}", header.join(",")).ok()?;
    for row in rows {
        writeln!(file, "{}", row.join(",")).ok()?;
    }
    Some(path)
}

/// Renders a fixed-width console table.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with three decimals for table cells.
#[must_use]
pub fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

/// Prints a section banner plus a table, and optionally records the CSV
/// artifact path.
pub fn print_experiment(title: &str, header: &[&str], rows: &[Vec<String>], csv_name: &str) {
    println!("== {title} ==");
    print!("{}", render_table(header, rows));
    if let Some(path) = write_csv(csv_name, header, rows) {
        println!("(csv written to {})", display_path(&path));
    }
    println!();
}

fn display_path(path: &Path) -> String {
    path.display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer-name".into(), "2.5".into()],
            ],
        );
        assert!(table.contains("longer-name"));
        assert!(table.lines().count() >= 4);
        let header_line = table.lines().next().unwrap();
        assert!(header_line.starts_with("name"));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let path = write_csv(
            "unit-test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        )
        .expect("csv written");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b"));
        assert!(content.contains("1,2"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fmt_uses_three_decimals() {
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(2.0), "2.000");
    }
}
