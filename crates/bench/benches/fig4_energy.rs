//! Benchmarks regenerating Fig. 4(c)/(d): the energy sweep and the per-frame
//! analytic energy model.

use bench::{bench_context, bench_scenario, FRAME_SIZES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xr_core::{EnergyModel, LatencyModel};
use xr_experiments::figures::energy_sweep;
use xr_types::ExecutionTarget;

fn analytic_energy(c: &mut Criterion) {
    let latency = LatencyModel::published();
    let energy = EnergyModel::published();
    let mut group = c.benchmark_group("fig4_energy/analytic_per_frame");
    for &size in &FRAME_SIZES {
        for (label, target) in [
            ("local", ExecutionTarget::Local),
            ("remote", ExecutionTarget::Remote),
        ] {
            let scenario = bench_scenario(size, target);
            group.bench_with_input(BenchmarkId::new(label, size as u64), &scenario, |b, s| {
                b.iter(|| black_box(energy.analyze(&latency, s).unwrap().total()))
            });
        }
    }
    group.finish();
}

fn full_figure(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("fig4_energy/full_sweep");
    group.sample_size(10);
    group.bench_function("fig4c_local", |b| {
        b.iter(|| black_box(energy_sweep(&ctx, ExecutionTarget::Local).unwrap()))
    });
    group.bench_function("fig4d_remote", |b| {
        b.iter(|| black_box(energy_sweep(&ctx, ExecutionTarget::Remote).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, analytic_energy, full_figure);
criterion_main!(benches);
