//! Deterministic seed derivation shared across the workspace.
//!
//! Every stochastic component of the workspace — the campaign engine's
//! per-point and per-replication seeds, the testbed simulator's per-stage
//! frame streams, the mobility walker — derives its RNG seed by chaining one
//! primitive: the SplitMix64 finalizer mixed over a `(seed, lane)` pair
//! ([`mix`]). Chaining keeps every derivation a *pure function* of its
//! coordinates, which is what makes campaign artifacts bit-identical across
//! worker counts and lets pipeline stages be evaluated in any order (scalar
//! frame-by-frame or batched stage-by-stage) without changing a single draw.
//!
//! The canonical derivations:
//!
//! | stream | derivation |
//! |---|---|
//! | campaign point | `mix(campaign_seed, point_index)` |
//! | replication | `mix(mix(campaign_seed, point_index), rep_index)` |
//! | pipeline stage | `mix(mix(session_seed, stage_id), frame_index)` |

/// Mixes a 64-bit seed with a lane index through the SplitMix64 finalizer.
///
/// Neighbouring lanes receive statistically independent outputs, and the
/// mapping is a pure function of the pair, so derived streams can be chained
/// (`mix(mix(seed, a), b)`) to index multi-dimensional seed spaces without
/// any shared RNG state.
#[must_use]
pub fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(lane.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the random seed for one operating point of a campaign from the
/// campaign's seed and the point's index in the grid.
///
/// The derivation is [`mix`] over the pair, so neighbouring point indices
/// receive statistically independent seeds while the mapping stays a pure
/// function of `(campaign_seed, point_index)` — the property that makes
/// campaign output independent of worker count and scheduling order.
#[must_use]
pub fn point_seed(campaign_seed: u64, point_index: usize) -> u64 {
    mix(campaign_seed, point_index as u64)
}

/// Derives the random seed for one replication of one operating point.
///
/// The derivation chains [`mix`] twice — once over
/// `(campaign_seed, point_index)` and once over the result and `rep_index` —
/// so every `(point, replication)` pair receives a statistically independent
/// seed while the mapping stays a pure function of the triple. Replicated
/// campaigns therefore remain bit-identical for any worker count.
#[must_use]
pub fn replication_seed(campaign_seed: u64, point_index: usize, rep_index: usize) -> u64 {
    mix(point_seed(campaign_seed, point_index), rep_index as u64)
}

/// Derives the seed of one named RNG stream of one frame of a simulated
/// session: `mix(mix(session_seed, stage_id), frame_index)`.
///
/// The testbed simulator gives every pipeline stage its own stream per
/// frame. Because a stage's draws depend only on `(session_seed, stage_id,
/// frame_index)` — never on how many draws *other* stages consumed — stages
/// can be evaluated frame-by-frame (the scalar reference) or column-by-column
/// over a whole batch of frames (the structure-of-arrays engine) and produce
/// bit-identical results.
#[must_use]
pub fn stage_stream_seed(session_seed: u64, stage_id: u64, frame_index: u64) -> u64 {
    mix(mix(session_seed, stage_id), frame_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_pure_and_decorrelates_lanes() {
        assert_eq!(mix(7, 3), mix(7, 3));
        let outputs: Vec<u64> = (0..256).map(|lane| mix(2024, lane)).collect();
        let mut unique = outputs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), outputs.len(), "lane collision");
        assert_ne!(mix(1, 5), mix(2, 5));
    }

    #[test]
    fn point_seed_matches_the_historical_splitmix_derivation() {
        // The pre-hoist implementation in `xr_sweep::seed` computed this
        // exact finalizer; campaign seeds must not change across the move.
        let reference = |campaign_seed: u64, point_index: usize| -> u64 {
            let mut z = campaign_seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((point_index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for campaign in [0u64, 7, 2024, u64::MAX] {
            for index in [0usize, 1, 13, 4096] {
                assert_eq!(point_seed(campaign, index), reference(campaign, index));
                assert_eq!(
                    replication_seed(campaign, index, 5),
                    reference(reference(campaign, index), 5)
                );
            }
        }
    }

    #[test]
    fn stage_streams_are_distinct_across_all_three_coordinates() {
        let mut seeds: Vec<u64> = Vec::new();
        for session in [1u64, 2] {
            for stage in 0..12u64 {
                for frame in [0u64, 1, 2, 100] {
                    seeds.push(stage_stream_seed(session, stage, frame));
                }
            }
        }
        let total = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), total, "stage stream seed collision");
    }
}
