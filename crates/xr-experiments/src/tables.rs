//! Table I and Table II regeneration.

use xr_devices::{CnnCatalog, DeviceCatalog};

/// Console/CSV rows reproducing Table I (device specifications).
#[must_use]
pub fn table1_rows() -> Vec<Vec<String>> {
    DeviceCatalog::table1()
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                d.model.clone(),
                d.soc.clone(),
                format!("{}", d.cpu_cores),
                format!("{:.2}", d.cpu_clock.as_f64()),
                d.gpu.clone(),
                format!("{:.0}", d.ram_gb),
                format!("{:.1}", d.memory_bandwidth.as_f64()),
                d.os.clone(),
                d.wifi.clone(),
                d.release.clone(),
            ]
        })
        .collect()
}

/// Header matching [`table1_rows`].
#[must_use]
pub fn table1_header() -> Vec<&'static str> {
    vec![
        "name",
        "model",
        "soc",
        "cpu_cores",
        "cpu_ghz",
        "gpu",
        "ram_gb",
        "mem_gbps",
        "os",
        "wifi",
        "release",
    ]
}

/// Console/CSV rows reproducing Table II (CNN models).
#[must_use]
pub fn table2_rows() -> Vec<Vec<String>> {
    CnnCatalog::table2()
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                format!("{}", m.depth),
                format!("{:.1}", m.size.as_f64()),
                format!("{:.1}", m.depth_scale),
                if m.gpu_support { "yes" } else { "no" }.to_string(),
                if m.quantized { "yes" } else { "no" }.to_string(),
                if m.on_device { "device" } else { "edge" }.to_string(),
            ]
        })
        .collect()
}

/// Header matching [`table2_rows`].
#[must_use]
pub fn table2_header() -> Vec<&'static str> {
    vec![
        "model",
        "depth_layers",
        "size_mb",
        "depth_scale",
        "gpu_support",
        "quantized",
        "placement",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nine_rows_with_matching_header() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert_eq!(row.len(), table1_header().len());
        }
        assert!(rows.iter().any(|r| r[1].contains("Quest 2")));
    }

    #[test]
    fn table2_has_eleven_rows_with_matching_header() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 11);
        for row in &rows {
            assert_eq!(row.len(), table2_header().len());
        }
        assert!(rows.iter().any(|r| r[0] == "YoloV3" && r[6] == "edge"));
    }
}
