//! The batched frame engine's contract: for every scenario, seed, session
//! length, and batch width — including widths that do not divide the frame
//! count — the structure-of-arrays engine produces a `GroundTruthFrame`
//! stream **bit-identical** to the scalar frame-by-frame reference.
//!
//! This is the property that makes per-stage RNG streams load-bearing: a
//! stage's draws depend only on `(session_seed, stage_id, frame_index)`,
//! never on the evaluation order, so the two engines must agree on every
//! `f64` they emit, not just statistically.

use proptest::prelude::*;
use xr_core::{MobilityConfig, Scenario};
use xr_testbed::{SimulationEngine, TestbedSimulator};
use xr_types::{ExecutionTarget, GigaHertz, Hertz, Meters, MetersPerSecond, Ratio};
use xr_wireless::HandoffKind;

#[allow(clippy::too_many_arguments)]
fn build_scenario(
    size: f64,
    clock: f64,
    share: f64,
    fps: f64,
    target: u8,
    updates: u32,
    speed: f64,
    radius: f64,
) -> Scenario {
    let execution = match target {
        0 => ExecutionTarget::Local,
        1 => ExecutionTarget::Remote,
        _ => ExecutionTarget::Split { client_share: 0.5 },
    };
    Scenario::builder()
        .frame_side(size)
        .cpu_clock(GigaHertz::new(clock))
        .cpu_share(Ratio::new(share))
        .frame_rate(Hertz::new(fps))
        .updates_per_frame(updates)
        .execution(execution)
        .mobility(MobilityConfig {
            speed: MetersPerSecond::new(speed),
            coverage_radius: Meters::new(radius),
            handoff_kind: HandoffKind::Vertical,
        })
        .build()
        .expect("generated scenario is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_sessions_are_bit_identical_to_the_scalar_reference(
        size in 300.0..700.0_f64,
        clock in 1.0..3.2_f64,
        share in 0.0..1.0_f64,
        fps in 15.0..60.0_f64,
        target in prop::sample::select(vec![0u8, 1, 2]),
        updates in 1u32..8,
        speed in 0.0..30.0_f64,
        radius in 5.0..60.0_f64,
        seed in 0u64..1_000_000,
        frames in 1u64..64,
        width in 1usize..80,
        users in prop::sample::select(vec![0u32, 1, 2, 3, 5]),
        layout in prop::sample::select(vec![0u8, 1, 2, 3]),
        density in 50.0..3000.0_f64,
        lazy in prop::sample::select(vec![false, true]),
    ) {
        let scenario = build_scenario(size, clock, share, fps, target, updates, speed, radius);
        let testbed = TestbedSimulator::new(seed);
        let scalar = testbed.simulate_session_scalar(&scenario, frames).unwrap();
        let batched = testbed.simulate_session_batched(&scenario, frames, width).unwrap();
        // Bit-identity, not approximate agreement: `GroundTruthFrame`
        // derives `PartialEq` over its raw f64 measurements.
        prop_assert!(
            batched == scalar,
            "engines diverged (frames {frames}, width {width})"
        );
        // The default dispatch (batched at the default width) agrees too.
        let default = testbed.simulate_session(&scenario, frames).unwrap();
        prop_assert_eq!(&default, &scalar);
        // And an explicitly configured scalar engine round-trips through
        // the public dispatch.
        let via_engine = testbed
            .clone()
            .with_engine(SimulationEngine::Scalar)
            .simulate_session(&scenario, frames)
            .unwrap();
        prop_assert_eq!(&via_engine, &scalar);

        // Multi-tenant contention: the same property with the edge shared
        // by `users` sessions (0 keeps contention off — covered above).
        // The frame rate is scaled down so the generator produces a mix of
        // stable queues and saturated ones; a saturated queue must refuse
        // to run identically in both engines.
        if users > 0 {
            let mut contended =
                build_scenario(size, clock, share, fps / 6.0, target, updates, speed, radius);
            contended.contention = Some(xr_core::ContentionConfig { users_per_edge: users });
            contended.validate().expect("contended scenario is valid");
            match testbed.simulate_session_scalar(&contended, frames) {
                Ok(scalar) => {
                    let batched = testbed
                        .simulate_session_batched(&contended, frames, width)
                        .unwrap();
                    prop_assert!(
                        batched == scalar,
                        "contended engines diverged (users {users}, frames {frames}, width {width})"
                    );
                }
                Err(scalar_err) => {
                    let batched_err = testbed
                        .simulate_session_batched(&contended, frames, width)
                        .unwrap_err();
                    // A saturated queue must refuse identically in both
                    // engines.
                    prop_assert_eq!(format!("{scalar_err:?}"), format!("{batched_err:?}"));
                }
            }
        }

        // Edge topology: the same property with the session roaming a
        // multi-site map — random layout, site density, migration policy,
        // and (sometimes) per-site contention. Saturation of a *site's*
        // queue (tenant populations cycle around the base) must refuse
        // identically in both engines too.
        let mut topologized = build_scenario(size, clock, share, fps / 6.0, target, updates, speed, radius);
        let topo_layout = match layout {
            0 => xr_types::TopologyLayout::Single,
            1 => xr_types::TopologyLayout::Square,
            2 => xr_types::TopologyLayout::Hex,
            _ => xr_types::TopologyLayout::Voronoi,
        };
        topologized.topology = Some(xr_core::TopologyConfig {
            layout: topo_layout,
            site_density: if topo_layout == xr_types::TopologyLayout::Single { 0.0 } else { density },
            migration_policy: if lazy {
                xr_types::MigrationPolicy::Lazy
            } else {
                xr_types::MigrationPolicy::Eager
            },
        });
        if users > 0 {
            topologized.contention = Some(xr_core::ContentionConfig { users_per_edge: users });
        }
        topologized.validate().expect("topologized scenario is valid");
        match testbed.simulate_session_scalar(&topologized, frames) {
            Ok(scalar) => {
                let batched = testbed
                    .simulate_session_batched(&topologized, frames, width)
                    .unwrap();
                prop_assert!(
                    batched == scalar,
                    "topologized engines diverged ({topo_layout:?}, density {density}, frames {frames}, width {width})"
                );
            }
            Err(scalar_err) => {
                let batched_err = testbed
                    .simulate_session_batched(&topologized, frames, width)
                    .unwrap_err();
                prop_assert_eq!(format!("{scalar_err:?}"), format!("{batched_err:?}"));
            }
        }
    }
}

#[test]
fn multi_server_uplink_keeps_the_pair_parity_across_engines() {
    // The uplink stage draws one lognormal noise factor per edge server
    // from a single per-frame stream: even-indexed servers consume a fresh
    // Box–Muller pair (cosine half), odd-indexed servers reuse the cached
    // sine half — with a uniform jitter word interleaved between servers.
    // Odd and even server counts end the frame in different cache states,
    // so run both against the scalar reference at awkward widths.
    for server_count in [1usize, 2, 3, 4, 5] {
        let servers: Vec<_> = (0..server_count)
            .map(|i| {
                let mut server = xr_core::EdgeServerConfig::jetson_xavier();
                server.task_share = 1.0 / (i + 1) as f64;
                server.distance = Meters::new(10.0 + 5.0 * i as f64);
                server
            })
            .collect();
        let scenario = Scenario::builder()
            .frame_side(512.0)
            .execution(ExecutionTarget::Remote)
            .edge_servers(servers)
            .build()
            .expect("multi-server scenario is valid");
        let testbed = TestbedSimulator::new(4242);
        let scalar = testbed.simulate_session_scalar(&scenario, 70).unwrap();
        for width in [1usize, 7, 64, 128] {
            let batched = testbed
                .simulate_session_batched(&scenario, 70, width)
                .unwrap();
            assert_eq!(
                batched, scalar,
                "engines diverged with {server_count} servers at width {width}"
            );
        }
    }
}
