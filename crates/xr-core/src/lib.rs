//! # xr-core
//!
//! The paper's primary contribution: a per-segment performance-analysis
//! framework for XR applications in edge-assisted wireless networks.
//!
//! Given a [`Scenario`] (device, edge servers, CNNs, frame workload, encoder
//! settings, external sensors, wireless links, mobility), the framework
//! computes, per generated frame:
//!
//! * the **end-to-end latency** breakdown of Eq. 1 with the per-segment
//!   models of Eqs. 2–18 ([`LatencyModel`]),
//! * the **energy consumption** breakdown of Eqs. 19–21 plus base energy and
//!   thermal energy ([`EnergyModel`]),
//! * the **Age-of-Information** and **Relevance-of-Information** of every
//!   external sensor, Eqs. 22–26 ([`AoiModel`]).
//!
//! The regression sub-models the framework relies on — compute-resource
//! availability (Eq. 3), encoding latency (Eq. 10), CNN complexity (Eq. 12)
//! and mean power (Eq. 21) — live in [`xr_devices`] and
//! [`encoding::EncodingLatencyModel`]; the framework can run them either with
//! the paper's published coefficients or refit on a (simulated) training
//! dataset, which is how the experiment harness mirrors the paper's
//! methodology.
//!
//! ```
//! use xr_core::{Scenario, XrPerformanceModel};
//! use xr_types::ExecutionTarget;
//!
//! // A OnePlus 8 Pro offloading object detection to a Jetson edge server.
//! let scenario = Scenario::builder()
//!     .client_from_catalog("XR2")?
//!     .frame_side(500.0)
//!     .execution(ExecutionTarget::Remote)
//!     .build()?;
//!
//! let model = XrPerformanceModel::published();
//! let report = model.analyze(&scenario)?;
//! assert!(report.latency.total().as_f64() > 0.0);
//! assert!(report.energy.total().as_f64() > 0.0);
//! # Ok::<(), xr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aoi;
pub mod encoding;
pub mod energy;
pub mod latency;
pub mod offload;
pub mod report;
pub mod scenario;

pub use aoi::{AoiModel, AoiReport, SensorAoi};
pub use encoding::{EncodingConfig, EncodingLatencyModel, DECODE_DISCOUNT};
pub use energy::{EnergyBreakdown, EnergyModel, RadioPowerModel};
pub use latency::{LatencyBreakdown, LatencyModel};
pub use offload::{Objective, OffloadCandidate, OffloadPlan, OffloadPlanner};
pub use report::{PerformanceReport, XrPerformanceModel};
pub use scenario::{
    BufferConfig, ClientConfig, ContentionConfig, CooperationConfig, EdgeServerConfig,
    MobilityConfig, Scenario, ScenarioBuilder, SensorConfig, TopologyConfig,
};
