//! Property harness for the multi-site edge topology: the single-site map
//! must be invisible, and the per-site contention queues must match M/M/1
//! closed form.
//!
//! Three contracts pin the topology generalisation to the legacy
//! single-zone stack:
//!
//! 1. **Walker equivalence.** Over [`EdgeTopology::single`] the
//!    [`TopologyWalker`] replays [`RandomWalker`] on the same RNG stream
//!    bit for bit — same positions, same crossing counts, and the stream
//!    itself left in the same state (checked by drawing more steps from
//!    both afterwards).
//! 2. **Session equivalence.** A scenario whose topology is the explicit
//!    `Single` layout produces a `GroundTruthSession` bit-identical to the
//!    same scenario with no topology at all, in both engines, with and
//!    without contention (the single site hosts exactly `users_per_edge`
//!    tenants, so its per-site queue equals the base queue).
//! 3. **Per-site queue closed form.** A static session attached to one
//!    site of a tiled map draws its remote stage from that site's M/M/1
//!    queue: over many frames the noiseless empirical mean converges to
//!    the snapshot's per-site analytic mean sojourn at the Monte-Carlo
//!    rate, exactly as `tests/contention_properties.rs` pins the
//!    single-queue stage against `MM1Queue::mean_time_in_system`.

use proptest::prelude::*;
use xr_core::{MobilityConfig, Scenario, TopologyConfig};
use xr_testbed::TestbedSimulator;
use xr_types::{
    ExecutionTarget, Hertz, Meters, MetersPerSecond, MigrationPolicy, Seconds, Segment,
    TopologyLayout,
};
use xr_wireless::{
    AccessTechnology, CoverageZone, EdgeTopology, HandoffKind, RandomWalkMobility, RandomWalker,
};

fn mobile_scenario(speed: f64, radius: f64, users: Option<u32>) -> Scenario {
    let mut builder = Scenario::builder()
        .execution(ExecutionTarget::Remote)
        .frame_side(300.0)
        .frame_rate(Hertz::new(5.0))
        .mobility(MobilityConfig {
            speed: MetersPerSecond::new(speed),
            coverage_radius: Meters::new(radius),
            handoff_kind: HandoffKind::Horizontal,
        });
    if let Some(users) = users {
        builder = builder.contention(users);
    }
    builder.build().expect("scenario is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Contract 1: the single-site TopologyWalker replays RandomWalker on
    // the same stream — positions, crossings, and the stream itself.
    #[test]
    fn single_site_walker_replays_the_legacy_walker(
        speed in 0.5..40.0_f64,
        radius in 3.0..60.0_f64,
        seed in 0u64..1_000_000,
        windows in prop::collection::vec(0.0..2.5_f64, 1..60),
    ) {
        let step_interval = Seconds::new(1.0);
        let zone = CoverageZone::new(Meters::new(radius));
        let mobility =
            RandomWalkMobility::new(MetersPerSecond::new(speed), step_interval, zone);
        let mut legacy = RandomWalker::new(&mobility, seed);
        let map = EdgeTopology::single(zone, AccessTechnology::WiFi5GHz, 1);
        let mut topo = map.walker(MetersPerSecond::new(speed), step_interval, seed);

        for (i, &w) in windows.iter().enumerate() {
            let window = Seconds::new(w);
            let crossings = legacy.advance(window);
            let events = topo.advance(window);
            prop_assert!(
                events.crossings == crossings,
                "crossing counts diverged at window {}", i
            );
            prop_assert!(events.migrations == 0, "a 1-site map cannot migrate");
            prop_assert_eq!(events.site, 0);
            prop_assert!(
                (legacy.radius().as_f64() - topo.radius().as_f64()).abs() < 1e-12,
                "positions diverged at window {}: legacy r {} vs topology r {}",
                i, legacy.radius().as_f64(), topo.radius().as_f64()
            );
        }
        prop_assert_eq!(topo.site_index(), 0);
        prop_assert_eq!(topo.sites_visited(), 1);
        // The RNG streams are in lockstep: further draws agree bit for bit.
        for _ in 0..16 {
            prop_assert!(legacy.step() == topo.step(), "streams fell out of lockstep");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Contract 2: the explicit Single layout is invisible — same session,
    // bit for bit, in both engines, contended or not.
    #[test]
    fn single_layout_sessions_match_the_untopologized_reference(
        speed in 0.0..35.0_f64,
        radius in 4.0..40.0_f64,
        seed in 0u64..1_000_000,
        frames in 1u64..96,
        width in 1usize..64,
        users in prop::sample::select(vec![0u32, 1, 3, 5]),
    ) {
        let users = (users > 0).then_some(users);
        let legacy = mobile_scenario(speed, radius, users);
        let mut single = legacy.clone();
        single.topology = Some(TopologyConfig {
            layout: TopologyLayout::Single,
            site_density: 0.0,
            migration_policy: MigrationPolicy::Eager,
        });
        let testbed = TestbedSimulator::new(seed);
        let reference = testbed.simulate_session_scalar(&legacy, frames).unwrap();
        let scalar = testbed.simulate_session_scalar(&single, frames).unwrap();
        prop_assert!(scalar == reference, "scalar single-layout session diverged");
        prop_assert_eq!(scalar.sites_visited(), 1);
        prop_assert!(scalar.migration_time() == Seconds::ZERO);
        let batched = testbed
            .simulate_session_batched(&single, frames, width)
            .unwrap();
        prop_assert!(batched == reference, "batched single-layout session diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Contract 3: a static session on a tiled map draws its remote stage
    // from its start site's repopulated M/M/1 queue — the noiseless
    // empirical mean converges to that site's analytic mean sojourn.
    #[test]
    fn static_site_queue_converges_to_the_per_site_closed_form(
        users in 2u32..8,
        density in 100.0..2500.0_f64,
        seed in 0u64..1_000_000,
    ) {
        let mut scenario = mobile_scenario(0.0, 30.0, Some(users));
        scenario.topology = Some(TopologyConfig {
            layout: TopologyLayout::Square,
            site_density: density,
            migration_policy: MigrationPolicy::Eager,
        });
        scenario.validate().expect("topologized scenario is valid");
        let testbed = TestbedSimulator::new(seed).with_noise(0.0);
        let snapshot = testbed
            .contention_snapshot(&scenario)
            .unwrap()
            .expect("contention configured");
        let map =
            TestbedSimulator::edge_topology(&scenario).expect("topology configured");
        let start = map.start_site();
        let (tenants, queues) = &snapshot.site_queues()[start];
        prop_assert_eq!(*tenants, map.sites()[start].tenants());
        // The site's analytic mean contention delay: the max over the
        // scenario's edge servers of the tagged session's weighted mean
        // sojourn, mirroring ContentionSnapshot::mean_contention_delay.
        let closed = queues
            .iter()
            .fold(0.0_f64, |acc, &(weight, contention)| {
                acc.max(contention.mean_sojourn().as_f64() * weight)
            });
        prop_assert!(closed > 0.0);
        let frames = 4_000u64;
        let session = testbed.simulate_session(&scenario, frames).unwrap();
        let mean = session
            .mean_segment_latency(Segment::RemoteInference)
            .as_f64();
        #[allow(clippy::cast_precision_loss)]
        let tolerance = 5.0 * closed / (frames as f64).sqrt();
        prop_assert!(
            (mean - closed).abs() < tolerance,
            "simulated {} vs site closed form {} ({} tenants, tolerance {})",
            mean, closed, tenants, tolerance
        );
    }
}

#[test]
fn eager_migration_costs_more_than_lazy_on_the_same_walk() {
    // Same map, same walk, same noise streams — only the per-migration
    // base differs, so the eager session's migration bill strictly
    // dominates the lazy one's while every migration count matches.
    let mut eager = mobile_scenario(25.0, 8.0, None);
    eager.topology = Some(TopologyConfig {
        layout: TopologyLayout::Hex,
        site_density: 1600.0,
        migration_policy: MigrationPolicy::Eager,
    });
    let mut lazy = eager.clone();
    lazy.topology = Some(TopologyConfig {
        migration_policy: MigrationPolicy::Lazy,
        ..eager.topology.unwrap()
    });
    let testbed = TestbedSimulator::new(7);
    let eager_session = testbed.simulate_session(&eager, 400).unwrap();
    let lazy_session = testbed.simulate_session(&lazy, 400).unwrap();
    assert!(eager_session.sites_visited() > 1, "walker never migrated");
    assert_eq!(
        eager_session.sites_visited(),
        lazy_session.sites_visited(),
        "policies must not change the walk"
    );
    assert!(eager_session.migration_time() > lazy_session.migration_time());
    assert!(lazy_session.migration_time() > Seconds::ZERO);
}
