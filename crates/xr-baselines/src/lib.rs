//! # xr-baselines
//!
//! Reimplementations of the two state-of-the-art analytical models the paper
//! compares against in Section VIII-D / Fig. 5:
//!
//! * **FACT** (Liu et al., INFOCOM'18) — an edge-orchestrator service-latency
//!   model for mobile AR that sums computation latency (a cycles-per-pixel
//!   model over the CPU clock), wireless transmission, and a core-network
//!   term. It does not model GPU/memory resources, codec parameters, frame
//!   rate, buffering, or per-segment structure.
//! * **LEAF** (Wang et al., TMC'23) — a per-segment latency/energy model for
//!   edge-assisted AR that breaks the pipeline down like the proposed
//!   framework but keeps FACT's simplified cycles-based computation model
//!   (no memory-bandwidth terms, no encoder-parameter regression, no
//!   CPU/GPU split, no queueing).
//!
//! Both baselines expose a [`BaselineModel`] interface over the same
//! [`Scenario`] type the proposed framework uses, plus a one-point
//! [`BaselineModel::calibrate`] step that plays the role of fitting their
//! constants on training data. The Fig. 5 experiment calibrates every model
//! (including the proposed one, which needs no calibration) at the central
//! operating point and compares normalized accuracy across the frame-size
//! sweep.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fact;
pub mod leaf;

pub use fact::FactModel;
pub use leaf::LeafModel;

use xr_core::Scenario;
use xr_types::{Joules, Result, Seconds};

/// A latency + energy analytical model that can be compared against the
/// proposed framework on the same scenarios.
pub trait BaselineModel {
    /// Human-readable model name used in figure legends.
    fn name(&self) -> &'static str;

    /// Predicted end-to-end latency for one frame of the scenario.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors.
    fn predict_latency(&self, scenario: &Scenario) -> Result<Seconds>;

    /// Predicted per-frame energy consumption of the XR device.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors.
    fn predict_energy(&self, scenario: &Scenario) -> Result<Joules>;

    /// Calibrates the model's free constants against one observed operating
    /// point (the analogue of training the baseline on measurement data).
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors.
    fn calibrate(
        &mut self,
        scenario: &Scenario,
        observed_latency: Seconds,
        observed_energy: Joules,
    ) -> Result<()>;
}
