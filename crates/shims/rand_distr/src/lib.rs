//! Offline stand-in for the `rand_distr` 0.4 crate.
//!
//! Provides the [`Distribution`] trait plus the [`Exp`] and [`Normal`]
//! distributions used by the queueing and testbed simulators. Exponential
//! sampling uses inversion; normal sampling uses Box–Muller (no cached
//! second variate, which costs one extra uniform draw per sample but keeps
//! the sampler stateless like the real crate's API).

use rand::{FromRng, RngCore};

/// Types that can produce samples of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Exp::new`] for non-positive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpError;

impl core::fmt::Display for ExpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rate (lambda) must be positive and finite")
    }
}

impl std::error::Error for ExpError {}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; `lambda` must be positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] if `lambda` is not a positive finite number.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion: -ln(1 - U) / lambda, with U in [0, 1).
        let u = f64::from_rng(rng);
        -(1.0 - u).ln() / self.lambda
    }
}

/// Error returned by [`Normal::new`] for invalid standard deviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "standard deviation must be non-negative and finite")
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; `std_dev` must be non-negative and finite.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative, NaN, or infinite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; clamp u1 away from zero so ln stays finite.
        let u1 = f64::from_rng(rng).max(f64::MIN_POSITIVE);
        let u2 = f64::from_rng(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Column (lane-oriented) forms of the scalar samplers: each `fill_*` maps
/// columns of raw `u64` generator words to the **exact** `f64` draws the
/// matching scalar sampler would produce from those words, one element at a
/// time, in bounds-check-free passes over contiguous slices.
///
/// The batched frame engine pre-fills raw word columns with
/// `xr_types::lanes::LaneStreams` (lane `j` = frame `j`'s own stream) and
/// pushes them through these transforms, so the per-frame loops never touch
/// an RNG object. Bit-identity with the scalar samplers is load-bearing —
/// the batched engine must match the scalar reference bit for bit — and is
/// pinned by the tests below:
///
/// * the portable passes apply literally the same expression as the scalar
///   samplers (`ln`/`cos`/`sqrt`/division from `std`, in the same order),
///   just restructured over chunks so LLVM can keep the integer→float
///   prologue vectorized and the bounds checks hoisted;
/// * [`fill_uniform_range`](column::fill_uniform_range) additionally
///   carries a runtime-detected AVX2
///   path. Every operation in it (shift, u64→f64 conversion via the
///   exponent-bias trick, multiply, add) is an exact IEEE-754 operation
///   with a single rounding, identical to its scalar counterpart, so the
///   SIMD path is bit-identical — not approximately equal — to the
///   portable one (asserted by tests on AVX2 hosts).
/// * [`fill_normal`](column::fill_normal) has **no** SIMD path: `ln` and
///   `cos` come from the
///   platform libm and no vector substitute guarantees the same rounding,
///   so per the determinism contract the transcendental pass stays
///   portable.
pub mod column {
    use super::{Exp, Normal};
    use rand::unit_f64_from_word;

    /// Writes `out[i] = ` the draw `normal.sample` would produce from the
    /// raw words `(raw_a[i], raw_b[i])` — Box–Muller over the two unit
    /// uniforms, bit-identical to [`Normal::sample`](super::Normal).
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length.
    pub fn fill_normal(normal: &Normal, raw_a: &[u64], raw_b: &[u64], out: &mut [f64]) {
        assert_eq!(raw_a.len(), out.len(), "raw_a column length mismatch");
        assert_eq!(raw_b.len(), out.len(), "raw_b column length mismatch");
        for ((out, &a), &b) in out.iter_mut().zip(raw_a).zip(raw_b) {
            let u1 = unit_f64_from_word(a).max(f64::MIN_POSITIVE);
            let u2 = unit_f64_from_word(b);
            let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
            *out = normal.mean + normal.std_dev * z;
        }
    }

    /// Writes `out[i] = ` the value `normal.sample(..).exp()` would produce
    /// from the raw words `(raw_a[i], raw_b[i])` — the multiplicative
    /// noise-factor draw of the frame pipelines, fused into one pass so a
    /// noise column needs no separate `exp` sweep. Bit-identical to the
    /// scalar sequence: the transform applies the very same operations in
    /// the same order.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length.
    pub fn fill_lognormal(normal: &Normal, raw_a: &[u64], raw_b: &[u64], out: &mut [f64]) {
        assert_eq!(raw_a.len(), out.len(), "raw_a column length mismatch");
        assert_eq!(raw_b.len(), out.len(), "raw_b column length mismatch");
        for ((out, &a), &b) in out.iter_mut().zip(raw_a).zip(raw_b) {
            let u1 = unit_f64_from_word(a).max(f64::MIN_POSITIVE);
            let u2 = unit_f64_from_word(b);
            let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
            *out = (normal.mean + normal.std_dev * z).exp();
        }
    }

    /// Writes `out[i] = ` the draw `rng.gen_range(lo..hi)` would produce
    /// from the raw word `raw[i]` — `lo + u * (hi - lo)` over the unit
    /// uniform, bit-identical to the `rand` shim's `f64` range sampler.
    ///
    /// Dispatches to an AVX2 pass on x86-64 hosts that support it (the
    /// transform is exact in IEEE-754 arithmetic, so the SIMD path is
    /// bit-identical); otherwise runs the portable chunked pass.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or the range is empty.
    pub fn fill_uniform_range(lo: f64, hi: f64, raw: &[u64], out: &mut [f64]) {
        assert_eq!(raw.len(), out.len(), "raw column length mismatch");
        assert!(lo < hi, "cannot sample empty range");
        let span = hi - lo;
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: `fill_uniform_range_avx2` requires AVX2, which the
            // runtime detection above just confirmed on this host.
            #[allow(unsafe_code)]
            unsafe {
                avx2::fill_uniform_range_avx2(lo, span, raw, out);
            }
            return;
        }
        fill_uniform_range_portable(lo, span, raw, out);
    }

    /// The portable pass behind [`fill_uniform_range`]; also the reference
    /// the AVX2 path is pinned against.
    pub(crate) fn fill_uniform_range_portable(lo: f64, span: f64, raw: &[u64], out: &mut [f64]) {
        for (out, &word) in out.iter_mut().zip(raw) {
            *out = lo + unit_f64_from_word(word) * span;
        }
    }

    /// Writes `out[i] = ` the draw `exp.sample` would produce from the raw
    /// word `raw[i]` — inversion over the unit uniform, bit-identical to
    /// [`Exp::sample`](super::Exp).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn fill_exp(exp: &Exp, raw: &[u64], out: &mut [f64]) {
        assert_eq!(raw.len(), out.len(), "raw column length mismatch");
        for (out, &word) in out.iter_mut().zip(raw) {
            let u = unit_f64_from_word(word);
            *out = -(1.0 - u).ln() / exp.lambda;
        }
    }

    /// The AVX2 lane pass. Isolated in its own module so the `unsafe` SIMD
    /// surface stays one screen long; the workspace otherwise denies
    /// `unsafe_code`.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    #[deny(unsafe_op_in_unsafe_fn)]
    mod avx2 {
        #[cfg(target_arch = "x86_64")]
        use core::arch::x86_64::{
            __m256d, __m256i, _mm256_add_pd, _mm256_and_si256, _mm256_castsi256_pd,
            _mm256_loadu_si256, _mm256_mul_pd, _mm256_or_si256, _mm256_set1_epi64x, _mm256_set1_pd,
            _mm256_srli_epi64, _mm256_storeu_pd, _mm256_sub_pd,
        };

        /// `2^52` with the double-precision exponent bits set: OR-ing a
        /// 32-bit integer into the mantissa of this constant yields the
        /// double `2^52 + n` exactly.
        const EXP_LO: i64 = 0x4330_0000_0000_0000;
        /// The same trick one exponent step up: OR-ing the high 32-bit half
        /// into this constant's mantissa yields `2^84 + hi · 2^32` exactly
        /// (one mantissa ulp at exponent 84 is `2^32`).
        const EXP_HI: i64 = 0x4530_0000_0000_0000;
        /// `2^84 + 2^52`, subtracted once to cancel both offsets. Exactly
        /// representable: `2^52` is a multiple of the `2^32` ulp at `2^84`.
        const EXP_BIAS: f64 = ((1u128 << 84) + (1u128 << 52)) as f64;

        /// Converts four `u64` words (each `< 2^53` after the `>> 11`
        /// shift) to the exact doubles `(word >> 11) as f64`, using the
        /// split hi/lo exponent-bias trick. Every FP operation here is
        /// exact (no rounding occurs): the halves are multiples of `2^32`
        /// and `1` respectively and all intermediate sums stay below
        /// `2^53`, so the result equals the scalar `as f64` conversion bit
        /// for bit.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn mantissa_to_f64(words: __m256i) -> __m256d {
            // Value-based AVX2 intrinsics are safe inside a target_feature
            // fn; only the caller's feature check is a safety obligation.
            let x = _mm256_srli_epi64::<11>(words);
            let lo = _mm256_or_si256(
                _mm256_and_si256(x, _mm256_set1_epi64x(0xFFFF_FFFF)),
                _mm256_set1_epi64x(EXP_LO),
            );
            let hi = _mm256_or_si256(_mm256_srli_epi64::<32>(x), _mm256_set1_epi64x(EXP_HI));
            _mm256_add_pd(
                _mm256_sub_pd(_mm256_castsi256_pd(hi), _mm256_set1_pd(EXP_BIAS)),
                _mm256_castsi256_pd(lo),
            )
        }

        /// Four-wide `lo + unit(word) * span`, with the scalar pass
        /// finishing any tail — the same single-rounding multiply and add
        /// as the portable code, so results are bit-identical.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn fill_uniform_range_avx2(
            lo: f64,
            span: f64,
            raw: &[u64],
            out: &mut [f64],
        ) {
            const UNIT: f64 = 1.0 / (1u64 << 53) as f64;
            let lanes = _mm256_set1_pd(lo);
            let scale = _mm256_set1_pd(UNIT);
            let spans = _mm256_set1_pd(span);
            let chunks = raw.len() / 4;
            for c in 0..chunks {
                // SAFETY: `c * 4 + 4 <= raw.len() == out.len()`, so both the
                // unaligned 32-byte load and store stay in bounds.
                unsafe {
                    let words = _mm256_loadu_si256(raw.as_ptr().add(c * 4).cast::<__m256i>());
                    let unit = _mm256_mul_pd(mantissa_to_f64(words), scale);
                    let value = _mm256_add_pd(lanes, _mm256_mul_pd(unit, spans));
                    _mm256_storeu_pd(out.as_mut_ptr().add(c * 4), value);
                }
            }
            let tail = chunks * 4;
            super::fill_uniform_range_portable(lo, span, &raw[tail..], &mut out[tail..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, Exp, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_rejects_bad_rates() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Exp::new(2.5).is_ok());
    }

    #[test]
    fn exp_mean_matches_one_over_lambda() {
        let mut rng = StdRng::seed_from_u64(11);
        let exp = Exp::new(4.0).unwrap();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.25).abs() < 5e-3, "mean {mean} far from 0.25");
    }

    fn raw_words(seed: u64, n: usize) -> Vec<u64> {
        use rand::RngCore;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn fill_normal_matches_scalar_sampling_bit_for_bit() {
        // A column transform over words (a_i, b_i) must equal sampling from
        // an RNG that replays exactly those words.
        struct Replay(Vec<u64>, usize);
        impl rand::RngCore for Replay {
            fn next_u64(&mut self) -> u64 {
                let w = self.0[self.1];
                self.1 += 1;
                w
            }
        }
        for (mean, std_dev) in [(0.0, 0.04), (3.0, 2.0), (-1.0, 0.0)] {
            let normal = Normal::new(mean, std_dev).unwrap();
            let a = raw_words(1, 257);
            let b = raw_words(2, 257);
            let mut out = vec![0.0; 257];
            super::column::fill_normal(&normal, &a, &b, &mut out);
            for i in 0..a.len() {
                let mut replay = Replay(vec![a[i], b[i]], 0);
                let expected = normal.sample(&mut replay);
                assert!(
                    out[i] == expected || (out[i].is_nan() && expected.is_nan()),
                    "element {i}: column {} != scalar {expected}",
                    out[i]
                );
            }
        }
        // Degenerate words (all zeros / all ones) go through the same
        // MIN_POSITIVE clamp as the scalar sampler.
        let normal = Normal::new(0.0, 1.0).unwrap();
        let mut out = [0.0; 2];
        super::column::fill_normal(&normal, &[0, u64::MAX], &[0, u64::MAX], &mut out);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fill_lognormal_matches_scalar_sample_then_exp_bit_for_bit() {
        let normal = Normal::new(0.0, 0.04).unwrap();
        let a = raw_words(21, 129);
        let b = raw_words(22, 129);
        let mut fused = vec![0.0; 129];
        let mut staged = vec![0.0; 129];
        super::column::fill_lognormal(&normal, &a, &b, &mut fused);
        super::column::fill_normal(&normal, &a, &b, &mut staged);
        for (i, value) in staged.iter_mut().enumerate() {
            *value = value.exp();
            assert_eq!(fused[i], *value, "element {i} diverged");
        }
    }

    #[test]
    fn fill_uniform_range_matches_gen_range_bit_for_bit() {
        use rand::Rng;
        for (lo, hi) in [(-0.05, 0.05), (0.0, 0.12), (-3.0, 5.0)] {
            // 1027 elements: exercises the AVX2 main loop and a non-multiple
            // -of-4 tail on hosts that take the SIMD path.
            let words = raw_words(3, 1027);
            let mut out = vec![0.0; 1027];
            super::column::fill_uniform_range(lo, hi, &words, &mut out);
            let mut rng = StdRng::seed_from_u64(3);
            for (i, &value) in out.iter().enumerate() {
                let expected: f64 = rng.gen_range(lo..hi);
                assert_eq!(value, expected, "element {i} diverged for {lo}..{hi}");
                assert!((lo..hi).contains(&value));
            }
        }
    }

    #[test]
    fn avx2_and_portable_uniform_passes_are_bit_identical() {
        // On hosts with AVX2 the public entry point takes the SIMD path;
        // pin it against the portable reference on awkward lengths (0, 1,
        // tail-only, multiple-of-4, large) and extreme words.
        for n in [0usize, 1, 3, 4, 5, 64, 1021] {
            let mut words = raw_words(7, n);
            if n > 2 {
                words[0] = 0;
                words[1] = u64::MAX;
            }
            let mut simd = vec![0.0; n];
            let mut portable = vec![0.0; n];
            super::column::fill_uniform_range(-0.05, 0.05, &words, &mut simd);
            super::column::fill_uniform_range_portable(
                -0.05,
                0.05 - (-0.05),
                &words,
                &mut portable,
            );
            assert_eq!(simd, portable, "length {n} diverged");
        }
    }

    #[test]
    fn fill_exp_matches_scalar_sampling_bit_for_bit() {
        let exp = Exp::new(4.0).unwrap();
        let words = raw_words(11, 513);
        let mut out = vec![0.0; 513];
        super::column::fill_exp(&exp, &words, &mut out);
        let mut rng = StdRng::seed_from_u64(11);
        for (i, &value) in out.iter().enumerate() {
            assert_eq!(value, exp.sample(&mut rng), "element {i} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "raw column length mismatch")]
    fn column_length_mismatch_is_rejected() {
        let exp = Exp::new(1.0).unwrap();
        let mut out = [0.0; 2];
        super::column::fill_exp(&exp, &[1, 2, 3], &mut out);
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(23);
        let normal = Normal::new(3.0, 2.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 2e-2, "mean {mean} far from 3.0");
        assert!((var - 4.0).abs() < 8e-2, "variance {var} far from 4.0");
    }
}
