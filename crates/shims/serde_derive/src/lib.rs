//! Offline stand-in for the real `serde_derive` crate.
//!
//! This workspace builds in an air-gapped container, so the published
//! `serde`/`serde_derive` crates cannot be fetched. The workspace-local
//! `serde` shim defines `Serialize`/`Deserialize` as empty marker traits,
//! and these derives emit the matching empty impls. Swapping the path
//! dependencies in the root manifest for the crates.io versions restores
//! real serialization without touching any call site.

use proc_macro::{TokenStream, TokenTree};

/// The pieces of a type definition the empty-impl derives need.
struct TypeHeader {
    /// Type name, e.g. `Scenario`.
    name: String,
    /// Raw generic parameter list without the angle brackets, e.g.
    /// `'a, T: Clone, const N: usize`. Empty for non-generic types.
    params_decl: String,
    /// Generic arguments for the `for Type<...>` position, e.g. `'a, T, N`.
    params_use: String,
}

/// Extracts the type name and generics from a `struct`/`enum`/`union` item.
fn parse_header(input: TokenStream) -> TypeHeader {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // The following bracketed group is the attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct"
                    || id.to_string() == "enum"
                    || id.to_string() == "union" =>
            {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => break name.to_string(),
                    other => panic!("expected type name after struct/enum, got {other:?}"),
                }
            }
            Some(_) => {}
            None => panic!("derive input ended before a struct/enum keyword"),
        }
    };

    // Collect the generic parameter tokens between `<` and the matching `>`.
    let mut decl_parts: Vec<String> = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            for tok in tokens.by_ref() {
                match &tok {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                decl_parts.push(tok.to_string());
            }
        }
    }
    let params_decl = decl_parts.join(" ");

    // Derive the usage list (parameter names only) from the declaration:
    // split on top-level commas, keep the leading lifetime/ident of each
    // parameter, and drop bounds/defaults.
    let mut params_use_parts: Vec<String> = Vec::new();
    for param in split_top_level(&decl_parts) {
        if let Some(name) = param_name(&param) {
            params_use_parts.push(name);
        }
    }
    let params_use = params_use_parts.join(", ");

    TypeHeader {
        name,
        params_decl,
        params_use,
    }
}

/// Splits a generic parameter token list on commas not nested in `<>`.
fn split_top_level(tokens: &[String]) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for tok in tokens {
        match tok.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "," if depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Returns the bare name of one generic parameter (`'a`, `T`, or `N` for
/// `const N: usize`), or `None` for something unrecognized.
fn param_name(param: &[String]) -> Option<String> {
    match param.first().map(String::as_str) {
        Some("'") => param.get(1).map(|id| format!("'{id}")),
        Some("const") => param.get(1).cloned(),
        Some(_) => param.first().cloned(),
        None => None,
    }
}

fn empty_impls(input: TokenStream, ser: bool) -> TokenStream {
    let header = parse_header(input);
    let name = &header.name;
    let ty = if header.params_use.is_empty() {
        name.clone()
    } else {
        format!("{name}<{}>", header.params_use)
    };
    let code = if ser {
        if header.params_decl.is_empty() {
            format!("impl ::serde::Serialize for {ty} {{}}")
        } else {
            format!(
                "impl<{}> ::serde::Serialize for {ty} {{}}",
                header.params_decl
            )
        }
    } else if header.params_decl.is_empty() {
        format!("impl<'de> ::serde::Deserialize<'de> for {ty} {{}}")
    } else {
        format!(
            "impl<'de, {}> ::serde::Deserialize<'de> for {ty} {{}}",
            header.params_decl
        )
    };
    code.parse().expect("generated impl parses")
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impls(input, true)
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impls(input, false)
}
