//! Shared fixtures for the Criterion benchmarks.
//!
//! Every bench target corresponds to a table/figure of the paper (see the
//! artifact table in the top-level README) or to an ablation of a design
//! choice. The
//! benchmarks measure the cost of regenerating each artifact — the analytic
//! evaluation itself is microseconds; the ground-truth simulation dominates.

#![warn(missing_docs)]

use xr_core::Scenario;
use xr_experiments::ExperimentContext;
use xr_types::{ExecutionTarget, GigaHertz};

/// The frame sizes used by the benchmark sweeps (the paper's x-axis).
pub const FRAME_SIZES: [f64; 5] = ExperimentContext::FRAME_SIZES;

/// Builds the standard benchmark scenario at a given frame size and target.
///
/// # Panics
///
/// Panics if the scenario fails validation (it never does for these inputs).
#[must_use]
pub fn bench_scenario(frame_size: f64, execution: ExecutionTarget) -> Scenario {
    Scenario::builder()
        .frame_side(frame_size)
        .cpu_clock(GigaHertz::new(2.0))
        .execution(execution)
        .build()
        .expect("valid benchmark scenario")
}

/// Builds the quick experiment context shared by the figure benches.
///
/// # Panics
///
/// Panics if calibration fails (it never does for the built-in campaign).
#[must_use]
pub fn bench_context() -> ExperimentContext {
    ExperimentContext::quick(2024).expect("calibration succeeds")
}
