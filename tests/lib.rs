//! Workspace-level integration-test package.
//!
//! The actual tests live in the sibling `*.rs` files declared as `[[test]]`
//! targets in `Cargo.toml`; this library only hosts shared helpers.

/// Builds the standard evaluation scenario used across the integration tests:
/// the held-out XR2 client at a given frame size, clock and execution target.
///
/// # Panics
///
/// Panics if the scenario fails validation (it never does for valid sweep
/// inputs).
#[must_use]
pub fn evaluation_scenario(
    frame_size: f64,
    cpu_clock_ghz: f64,
    execution: xr_types::ExecutionTarget,
) -> xr_core::Scenario {
    xr_core::Scenario::builder()
        .client_from_catalog("XR2")
        .expect("XR2 exists")
        .frame_side(frame_size)
        .cpu_clock(xr_types::GigaHertz::new(cpu_clock_ghz))
        .execution(execution)
        .build()
        .expect("valid scenario")
}
