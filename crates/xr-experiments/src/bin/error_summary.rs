//! §VIII-A/B mean-error summary: proposed model vs ground truth.

use xr_experiments::{output, ErrorSummary, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let summary = ErrorSummary::compute(&ctx).expect("error summary failed");
    output::print_experiment(
        "Mean error of the proposed model vs ground truth (%)",
        &["experiment", "measured_%", "paper_%"],
        &summary.rows(),
        "error_summary.csv",
    );
    println!("worst case: {:.2}%", summary.worst_percent());
}
