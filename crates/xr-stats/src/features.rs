//! Feature transforms for the regression sub-models.
//!
//! The compute-resource model (Eq. 3) and the mean-power model (Eq. 21) are
//! quadratic in the CPU/GPU clock frequencies, so their design matrices need
//! degree-2 polynomial expansions of the raw covariates. [`PolynomialFeatures`]
//! provides the expansion, optionally including interaction terms, together
//! with human-readable feature names for reporting.

use serde::{Deserialize, Serialize};

/// Expands raw feature vectors into polynomial feature vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolynomialFeatures {
    degree: u32,
    interactions: bool,
}

impl PolynomialFeatures {
    /// Creates an expansion of the given degree without interaction terms —
    /// each input feature `x` contributes `x, x², …, x^degree`.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    #[must_use]
    pub fn new(degree: u32) -> Self {
        assert!(degree >= 1, "degree must be at least 1");
        Self {
            degree,
            interactions: false,
        }
    }

    /// Enables pairwise interaction terms `x_i · x_j` (i < j). Only supported
    /// for degree-2 expansions, which is all the paper's models need.
    #[must_use]
    pub fn with_interactions(mut self) -> Self {
        self.interactions = true;
        self
    }

    /// The polynomial degree.
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Transforms one raw feature row.
    #[must_use]
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(row.len() * self.degree as usize);
        for &x in row {
            let mut power = x;
            out.push(power);
            for _ in 1..self.degree {
                power *= x;
                out.push(power);
            }
        }
        if self.interactions {
            for i in 0..row.len() {
                for j in (i + 1)..row.len() {
                    out.push(row[i] * row[j]);
                }
            }
        }
        out
    }

    /// Transforms a whole dataset.
    #[must_use]
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Names of the expanded features, given names for the raw features.
    /// Useful when printing fitted coefficients in the regression report.
    #[must_use]
    pub fn feature_names(&self, raw_names: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        for name in raw_names {
            names.push((*name).to_string());
            for d in 2..=self.degree {
                names.push(format!("{name}^{d}"));
            }
        }
        if self.interactions {
            for i in 0..raw_names.len() {
                for j in (i + 1)..raw_names.len() {
                    names.push(format!("{}*{}", raw_names[i], raw_names[j]));
                }
            }
        }
        names
    }

    /// Number of output features for a given number of raw features.
    #[must_use]
    pub fn output_len(&self, raw_len: usize) -> usize {
        let base = raw_len * self.degree as usize;
        if self.interactions {
            base + raw_len * raw_len.saturating_sub(1) / 2
        } else {
            base
        }
    }
}

/// Standardises columns to zero mean and unit variance, remembering the
/// transform so that test data can be scaled consistently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    std_devs: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    #[must_use]
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler to an empty dataset");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged dataset");
        let n = rows.len() as f64;
        let mut means = vec![0.0; cols];
        for row in rows {
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; cols];
        for row in rows {
            for ((v, x), m) in vars.iter_mut().zip(row).zip(&means) {
                *v += (x - m).powi(2);
            }
        }
        let std_devs = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { means, std_devs }
    }

    /// Scales one row with the fitted means and standard deviations.
    #[must_use]
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.means)
            .zip(&self.std_devs)
            .map(|((x, m), s)| (x - m) / s)
            .collect()
    }

    /// Scales a dataset.
    #[must_use]
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Column means captured by the fit.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations captured by the fit (zero-variance columns
    /// are reported as 1.0 so that the transform is a no-op for them).
    #[must_use]
    pub fn std_devs(&self) -> &[f64] {
        &self.std_devs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_two_expansion_matches_eq3_structure() {
        // Eq. 3 uses (f_c, f_c²) and (f_g, f_g²).
        let poly = PolynomialFeatures::new(2);
        let row = poly.transform_row(&[2.0, 3.0]);
        assert_eq!(row, vec![2.0, 4.0, 3.0, 9.0]);
        assert_eq!(poly.output_len(2), 4);
    }

    #[test]
    fn interactions_appended_after_powers() {
        let poly = PolynomialFeatures::new(2).with_interactions();
        let row = poly.transform_row(&[2.0, 3.0]);
        assert_eq!(row, vec![2.0, 4.0, 3.0, 9.0, 6.0]);
        assert_eq!(poly.output_len(2), 5);
    }

    #[test]
    fn degree_one_is_identity() {
        let poly = PolynomialFeatures::new(1);
        assert_eq!(poly.transform_row(&[5.0, -1.0]), vec![5.0, -1.0]);
        assert_eq!(poly.degree(), 1);
    }

    #[test]
    fn feature_names_track_structure() {
        let poly = PolynomialFeatures::new(2).with_interactions();
        let names = poly.feature_names(&["f_c", "f_g"]);
        assert_eq!(names, vec!["f_c", "f_c^2", "f_g", "f_g^2", "f_c*f_g"]);
    }

    #[test]
    fn transform_handles_whole_dataset() {
        let poly = PolynomialFeatures::new(3);
        let out = poly.transform(&[vec![2.0], vec![3.0]]);
        assert_eq!(out, vec![vec![2.0, 4.0, 8.0], vec![3.0, 9.0, 27.0]]);
    }

    #[test]
    #[should_panic(expected = "degree must be at least 1")]
    fn zero_degree_rejected() {
        let _ = PolynomialFeatures::new(0);
    }

    #[test]
    fn scaler_produces_zero_mean_unit_variance() {
        let rows = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let scaler = StandardScaler::fit(&rows);
        let scaled = scaler.transform(&rows);
        for col in 0..2 {
            let mean: f64 = scaled.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 = scaled.iter().map(|r| (r[col] - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
        assert_eq!(scaler.means().len(), 2);
        assert_eq!(scaler.std_devs().len(), 2);
    }

    #[test]
    fn scaler_constant_column_is_noop() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaler = StandardScaler::fit(&rows);
        let scaled = scaler.transform_row(&[5.0]);
        assert_eq!(scaled, vec![0.0]);
        assert_eq!(scaler.std_devs(), &[1.0]);
    }
}
