//! Multiplayer VR: a Quest 2 headset cooperating with other players through
//! an edge server. The example compares local, remote, and split execution,
//! includes the XR-cooperation segment in the totals (unlike the default
//! pipeline), and shows the effect of splitting the inference task across two
//! edge servers.
//!
//! ```text
//! cargo run -p xr-examples --bin multiplayer_vr
//! ```

use xr_core::{CooperationConfig, EdgeServerConfig, Scenario, XrPerformanceModel};
use xr_types::{Error, ExecutionTarget, MegaBytes, Meters, SegmentSet};
use xr_wireless::AccessTechnology;

fn main() -> Result<(), Error> {
    let model = XrPerformanceModel::published();

    println!("=== Multiplayer VR on Meta Quest 2 (XR6), cooperation included in totals ===");
    println!(
        "{:<34} {:>14} {:>14}",
        "execution", "latency (ms)", "energy (mJ)"
    );

    let targets = [
        ("local (on-device MobileNetV2)", ExecutionTarget::Local),
        ("remote (single edge, YOLOv3)", ExecutionTarget::Remote),
        (
            "split 30% device / 70% edge",
            ExecutionTarget::Split { client_share: 0.3 },
        ),
    ];
    for (label, target) in targets {
        let scenario = vr_scenario(target, false)?;
        let report = model.analyze(&scenario)?;
        println!(
            "{label:<34} {:>14.2} {:>14.2}",
            report.latency_ms().as_f64(),
            report.energy_mj().as_f64()
        );
    }

    // Distribute the remote task over two edge servers working in parallel.
    let scenario = vr_scenario(ExecutionTarget::Remote, true)?;
    let report = model.analyze(&scenario)?;
    println!(
        "{:<34} {:>14.2} {:>14.2}",
        "remote (two parallel edge servers)",
        report.latency_ms().as_f64(),
        report.energy_mj().as_f64()
    );

    Ok(())
}

fn vr_scenario(target: ExecutionTarget, two_servers: bool) -> Result<Scenario, Error> {
    let near = EdgeServerConfig {
        name: "EDGE-XAVIER".into(),
        distance: Meters::new(8.0),
        task_share: if two_servers { 0.6 } else { 1.0 },
        ..EdgeServerConfig::jetson_xavier()
    };
    let mut servers = vec![near];
    if two_servers {
        servers.push(EdgeServerConfig {
            name: "EDGE-TX2".into(),
            distance: Meters::new(25.0),
            task_share: 0.4,
            technology: AccessTechnology::WiFi5GHz,
            ..EdgeServerConfig::jetson_xavier()
        });
    }
    Scenario::builder()
        .client_from_catalog("XR6")?
        .frame_side(600.0)
        .execution(target)
        .edge_servers(servers)
        .cooperation(CooperationConfig {
            payload: MegaBytes::new(0.12),
            distance: Meters::new(15.0),
            throughput: AccessTechnology::WiFi5GHz.nominal_throughput(),
            include_in_totals: true,
        })
        .segments(SegmentSet::full())
        .build()
}
