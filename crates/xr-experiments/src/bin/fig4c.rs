//! Fig. 4(c): end-to-end energy for local inference, GT vs proposed model.

use xr_experiments::figures::energy_sweep;
use xr_experiments::{output, ExperimentContext};
use xr_types::ExecutionTarget;

fn main() {
    let ctx = ExperimentContext::from_args();
    let sweep = energy_sweep(&ctx, ExecutionTarget::Local).expect("sweep failed");
    output::print_experiment(
        "Fig. 4(c) — end-to-end energy, local inference (mJ)",
        &["frame_size", "cpu_ghz", "gt_mj", "proposed_mj", "error_%"],
        &sweep.rows(),
        "fig4c.csv",
    );
    println!(
        "mean error: {:.2}% (paper: 3.52%)",
        sweep.mean_error_percent()
    );
}
