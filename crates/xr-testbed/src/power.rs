//! A Monsoon-style power monitor.
//!
//! The paper measures energy with a Monsoon Power Monitor sampling the supply
//! rail once every 0.2 ms. [`PowerMonitor`] reproduces that observable: given
//! the sequence of pipeline phases a frame goes through (each with a nominal
//! power level and a duration), it samples a noisy power value every 0.2 ms
//! and integrates the samples to energy — which is how the ground-truth
//! energy numbers of Figs. 4(c)/(d) are produced.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use xr_types::{Joules, Seconds, Watts};

/// One sampled point of the power trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Time since the start of the frame.
    pub time: Seconds,
    /// Instantaneous power.
    pub power: Watts,
}

/// A complete sampled power trace for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    samples: Vec<PowerSample>,
    sampling_interval: Seconds,
}

impl PowerTrace {
    /// The samples in time order.
    #[must_use]
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// The sampling interval used.
    #[must_use]
    pub fn sampling_interval(&self) -> Seconds {
        self.sampling_interval
    }

    /// Total traced duration.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.sampling_interval * self.samples.len() as f64
    }

    /// Integrates the trace to energy (rectangle rule over the fixed-interval
    /// samples, exactly what the Monsoon tooling does).
    #[must_use]
    pub fn energy(&self) -> Joules {
        let sum_power: f64 = self.samples.iter().map(|s| s.power.as_f64()).sum();
        Joules::new(sum_power * self.sampling_interval.as_f64())
    }

    /// Mean power over the trace (zero for an empty trace).
    #[must_use]
    pub fn mean_power(&self) -> Watts {
        if self.samples.is_empty() {
            return Watts::ZERO;
        }
        Watts::new(
            self.samples.iter().map(|s| s.power.as_f64()).sum::<f64>() / self.samples.len() as f64,
        )
    }

    /// Peak power over the trace.
    #[must_use]
    pub fn peak_power(&self) -> Watts {
        self.samples
            .iter()
            .map(|s| s.power)
            .fold(Watts::ZERO, Watts::max)
    }
}

/// The simulated power monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMonitor {
    sampling_interval: Seconds,
    /// Relative standard deviation of the sampling noise (combined supply
    /// ripple and ADC noise).
    noise_fraction: f64,
}

impl PowerMonitor {
    /// The Monsoon configuration used in the paper: one sample every 0.2 ms,
    /// ≈2 % combined measurement noise.
    #[must_use]
    pub fn monsoon() -> Self {
        Self {
            sampling_interval: Seconds::new(0.2e-3),
            noise_fraction: 0.02,
        }
    }

    /// Creates a monitor with an explicit sampling interval and noise level.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive or the noise fraction is
    /// negative.
    #[must_use]
    pub fn new(sampling_interval: Seconds, noise_fraction: f64) -> Self {
        assert!(
            sampling_interval.is_positive(),
            "sampling interval must be positive"
        );
        assert!(noise_fraction >= 0.0, "noise fraction must be non-negative");
        Self {
            sampling_interval,
            noise_fraction,
        }
    }

    /// The sampling interval.
    #[must_use]
    pub fn sampling_interval(&self) -> Seconds {
        self.sampling_interval
    }

    /// Records a trace for a frame described as a sequence of
    /// `(nominal power, duration)` phases, adding `baseline` (the base power
    /// that is always drawn) to every sample.
    #[must_use]
    pub fn record(&self, phases: &[(Watts, Seconds)], baseline: Watts, seed: u64) -> PowerTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = Normal::new(1.0, self.noise_fraction.max(f64::MIN_POSITIVE))
            .expect("valid normal distribution");
        let dt = self.sampling_interval.as_f64();
        let mut samples = Vec::new();
        let mut time = 0.0;

        for (power, duration) in phases {
            if duration.as_f64() <= 0.0 {
                continue;
            }
            let end = time + duration.as_f64();
            while time < end {
                let factor = if self.noise_fraction > 0.0 {
                    noise.sample(&mut rng).max(0.0)
                } else {
                    1.0
                };
                let level = (power.as_f64() + baseline.as_f64()) * factor;
                samples.push(PowerSample {
                    time: Seconds::new(time),
                    power: Watts::new(level.max(0.0)),
                });
                time += dt;
            }
        }

        PowerTrace {
            samples,
            sampling_interval: self.sampling_interval,
        }
    }

    /// Integrates the energy of a frame's phase sequence in **closed form**:
    /// the exact distribution of [`PowerMonitor::record`] followed by
    /// [`PowerTrace::energy`], at a tiny fraction of the cost.
    ///
    /// Recording draws one `N(1, σ²)` noise factor per 0.2 ms sample and
    /// sums `k ≈ duration/Δt` of them per phase; but the mean of `k` iid
    /// normal factors is itself exactly `N(1, σ²/k)`, so one aggregated
    /// draw per phase reproduces the *same energy distribution* (mean and
    /// variance both exact, up to the astronomically improbable per-sample
    /// zero clamp) with `k`-times fewer draws. This is the form the frame
    /// simulator integrates ground-truth energy with — the hot path of
    /// every measurement campaign; [`PowerMonitor::record`] remains the
    /// full-trace observable for tests and trace inspection. Statistical
    /// agreement between the two forms is pinned by a unit test.
    #[must_use]
    pub fn measure_energy(
        &self,
        phases: &[(Watts, Seconds)],
        baseline: Watts,
        seed: u64,
    ) -> Joules {
        let mut rng = StdRng::seed_from_u64(seed);
        // One Box–Muller pair cache across the frame's phases: each phase
        // applies its own aggregated σ to the next *standard* variate, so
        // consecutive phases share one word pair (and one transcendental
        // set) while keeping the exact per-phase distribution. Phases that
        // span no samples draw nothing, as before.
        let mut pairs = rand_distr::StandardNormalPairs::new();
        let dt = self.sampling_interval.as_f64();
        let mut energy = 0.0;

        for (power, duration) in phases {
            if duration.as_f64() <= 0.0 {
                continue;
            }
            // The number of monitor samples the phase spans, on the same
            // Δt grid as the recorded trace (rounded, so quantisation is
            // unbiased across phases).
            let samples = (duration.as_f64() / dt).round();
            if samples < 1.0 {
                continue;
            }
            let factor = if self.noise_fraction > 0.0 {
                let aggregated = Normal::new(1.0, self.noise_fraction / samples.sqrt())
                    .expect("valid normal distribution");
                aggregated.from_standard(pairs.next(&mut rng)).max(0.0)
            } else {
                1.0
            };
            energy += (power.as_f64() + baseline.as_f64()) * factor * samples * dt;
        }

        Joules::new(energy)
    }
}

impl Default for PowerMonitor {
    fn default() -> Self {
        Self::monsoon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_trace_integrates_exactly() {
        let monitor = PowerMonitor::new(Seconds::new(0.2e-3), 0.0);
        let phases = [
            (Watts::new(2.0), Seconds::new(0.1)),
            (Watts::new(1.0), Seconds::new(0.2)),
        ];
        let trace = monitor.record(&phases, Watts::ZERO, 1);
        // Expected energy: 2·0.1 + 1·0.2 = 0.4 J (±one sample of quantisation).
        let e = trace.energy().as_f64();
        assert!((e - 0.4).abs() < 2.0 * 0.2e-3 * 2.0, "energy {e}");
        assert_eq!(trace.sampling_interval(), Seconds::new(0.2e-3));
        assert!((trace.duration().as_f64() - 0.3).abs() < 1e-3);
    }

    #[test]
    fn monsoon_noise_stays_within_a_few_percent() {
        let monitor = PowerMonitor::monsoon();
        let phases = [(Watts::new(2.5), Seconds::new(0.5))];
        let trace = monitor.record(&phases, Watts::new(0.5), 7);
        let expected = 3.0 * 0.5;
        let rel_err = (trace.energy().as_f64() - expected).abs() / expected;
        assert!(rel_err < 0.02, "relative error {rel_err}");
        assert!((trace.mean_power().as_f64() - 3.0).abs() < 0.1);
        assert!(trace.peak_power() >= trace.mean_power());
    }

    #[test]
    fn baseline_is_added_to_every_sample() {
        let monitor = PowerMonitor::new(Seconds::new(1e-3), 0.0);
        let trace = monitor.record(&[(Watts::new(1.0), Seconds::new(0.01))], Watts::new(0.5), 3);
        for s in trace.samples() {
            assert!((s.power.as_f64() - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_duration_phases_are_skipped() {
        let monitor = PowerMonitor::monsoon();
        let trace = monitor.record(
            &[
                (Watts::new(5.0), Seconds::ZERO),
                (Watts::new(1.0), Seconds::new(0.01)),
            ],
            Watts::ZERO,
            9,
        );
        assert!(trace.peak_power().as_f64() < 2.0);
        assert!(!trace.samples().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let monitor = PowerMonitor::monsoon();
        let phases = [(Watts::new(2.0), Seconds::new(0.05))];
        let a = monitor.record(&phases, Watts::ZERO, 11);
        let b = monitor.record(&phases, Watts::ZERO, 11);
        let c = monitor.record(&phases, Watts::ZERO, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn measure_energy_matches_the_recorded_trace_distribution() {
        // The closed form must agree with the sampled trace in mean *and*
        // spread: the aggregated per-phase factor is N(1, σ²/k), exactly the
        // distribution of the mean of the k per-sample factors.
        let monitor = PowerMonitor::monsoon();
        // Durations on the scale of real frame phases, so the ±1-sample grid
        // quantisation of the recorded trace stays well under the tolerance.
        let phases = [
            (Watts::new(2.1), Seconds::new(0.13)),
            (Watts::new(0.0), Seconds::ZERO),
            (Watts::new(0.9), Seconds::new(0.041)),
            (Watts::new(1.4), Seconds::new(0.062)),
        ];
        let baseline = Watts::new(0.85);
        let seeds = 400u64;
        let stats = |values: &[f64]| {
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let var =
                values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
            (mean, var.sqrt())
        };
        let recorded: Vec<f64> = (0..seeds)
            .map(|s| monitor.record(&phases, baseline, s).energy().as_f64())
            .collect();
        let measured: Vec<f64> = (0..seeds)
            .map(|s| monitor.measure_energy(&phases, baseline, s).as_f64())
            .collect();
        let (rec_mean, rec_std) = stats(&recorded);
        let (mes_mean, mes_std) = stats(&measured);
        // The two forms may disagree by at most one Δt sample per phase
        // (the recorded trace's grid drifts across phase boundaries).
        let total: f64 = phases.iter().map(|(_, d)| d.as_f64()).sum();
        let quantisation_bound = 2.0 * phases.len() as f64 * 0.2e-3 / total;
        let mean_gap = (rec_mean - mes_mean).abs() / rec_mean;
        assert!(
            mean_gap < quantisation_bound,
            "means diverged by {mean_gap} (bound {quantisation_bound})"
        );
        assert!(
            0.5 < mes_std / rec_std && mes_std / rec_std < 2.0,
            "spread diverged: recorded {rec_std}, measured {mes_std}"
        );
        // The noiseless branch integrates exactly (up to the shared Δt
        // quantisation of phase boundaries).
        let quiet = PowerMonitor::new(Seconds::new(0.2e-3), 0.0);
        let exact = quiet.measure_energy(&phases, Watts::ZERO, 3).as_f64();
        let trace = quiet.record(&phases, Watts::ZERO, 3).energy().as_f64();
        assert!(
            (exact - trace).abs() / trace < 0.02,
            "noiseless forms diverged: {exact} vs {trace}"
        );
    }

    #[test]
    fn empty_trace_behaves() {
        let monitor = PowerMonitor::monsoon();
        let trace = monitor.record(&[], Watts::ZERO, 1);
        assert_eq!(trace.energy(), Joules::ZERO);
        assert_eq!(trace.mean_power(), Watts::ZERO);
        assert_eq!(trace.samples().len(), 0);
    }

    #[test]
    #[should_panic(expected = "sampling interval must be positive")]
    fn zero_interval_rejected() {
        let _ = PowerMonitor::new(Seconds::ZERO, 0.01);
    }
}
