//! Lane-oriented wide RNG streams for the batched frame engine.
//!
//! The per-stage stream discipline of [`crate::seed`] makes every frame's
//! draws a pure function of `(session_seed, stage_id, frame_index)`: frame
//! `f`'s stage-`s` stream is a xoshiro256++ generator seeded (through the
//! SplitMix64 expansion the workspace `rand` shim uses for
//! `StdRng::seed_from_u64`) from `mix(mix(session_seed, s), f)`. A batched
//! engine therefore never needs draws to cross frames — which is exactly
//! what makes a *wide* generator trivial to pin down: run one generator
//! **lane** per frame, side by side in structure-of-arrays layout, and emit
//! draws column-by-column (draw #d of every frame at once) instead of
//! frame-by-frame.
//!
//! [`LaneStreams`] is that wide generator. Lane `j` of a
//! [`reseed`](LaneStreams::reseed) at `(stage_seed_base, first_frame, n)`
//! owns frame `first_frame + j` and replays *that frame's own stream*,
//! word for word — so the output is **lane-count invariant by
//! construction**: widening or narrowing the batch only changes how many
//! frames are produced per call, never which words a given frame sees. This
//! is the same invariant per-stage streams pinned for batching, pushed one
//! level down to the raw `u64` draws (and it is what any future
//! within-session parallelism will rely on, too).
//!
//! The SplitMix64 seeding chain and the xoshiro256++ step are deliberately
//! *duplicated* from the `rand` shim rather than imported: the shim exposes
//! neither its state nor a multi-lane API, and the duplication lets the
//! seeding and stepping loops run as contiguous passes over the lane
//! columns that LLVM can autovectorize. Bit-identity with
//! `StdRng::seed_from_u64` is pinned by the unit tests below (the shim is a
//! dev-dependency) and by the batched-engine equivalence suite.

/// Golden-ratio increment of the SplitMix64 state walk.
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 output, advancing `state` — bit-identical to the seeding
/// walk inside the `rand` shim's `StdRng::seed_from_u64`.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A bank of xoshiro256++ generators in structure-of-arrays layout: lane
/// `j` replays the stream of frame `first_frame + j`, and
/// [`fill_next`](LaneStreams::fill_next) advances every lane one draw,
/// producing one *column* of raw `u64` words per call.
///
/// ```
/// use xr_types::lanes::LaneStreams;
/// use xr_types::seed;
///
/// let stage_base = seed::mix(42, 3); // mix(session_seed, stage_id)
/// let mut lanes = LaneStreams::new();
/// lanes.reseed(stage_base, 1, 8); // lanes own frames 1..=8
/// let mut column = [0u64; 8];
/// lanes.fill_next(&mut column); // draw #0 of frames 1..=8
/// lanes.fill_next(&mut column); // draw #1 of frames 1..=8
/// ```
#[derive(Debug, Clone, Default)]
pub struct LaneStreams {
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
}

/// `true` when `XR_FORCE_PORTABLE` is set (to anything but `0`): the lane
/// engine then takes its portable passes even on AVX2 hosts. Mirrors the
/// knob in the `rand_distr` shim's `math` module (this crate sits below it
/// in the dependency graph, so the gate is duplicated rather than shared);
/// both paths are bit-identical, so the knob never changes results — it
/// only lets CI exercise the portable code on SIMD hardware.
#[cfg(target_arch = "x86_64")]
fn force_portable() -> bool {
    static FORCE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("XR_FORCE_PORTABLE").is_some_and(|v| v != *"0"))
}

impl LaneStreams {
    /// An empty bank; call [`reseed`](LaneStreams::reseed) before drawing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lanes (frames) currently seeded.
    #[must_use]
    pub fn width(&self) -> usize {
        self.s0.len()
    }

    /// Re-seeds the bank onto `width` consecutive frame streams: lane `j`
    /// becomes the generator `StdRng::seed_from_u64(mix(stage_seed_base,
    /// first_frame + j))` of frame `first_frame + j`. Lane storage is
    /// reused across calls, so re-seeding in a batch loop allocates only on
    /// the first (or a widening) call.
    pub fn reseed(&mut self, stage_seed_base: u64, first_frame: u64, width: usize) {
        // Length adjustments only when the batch shape changes (once per
        // session plus the tail batch): the seeding pass below overwrites
        // every lane, so re-zeroing the state columns each reseed would be
        // pure memory traffic.
        if self.s0.len() != width {
            self.s0.resize(width, 0);
            self.s1.resize(width, 0);
            self.s2.resize(width, 0);
            self.s3.resize(width, 0);
        }
        #[cfg(target_arch = "x86_64")]
        if !force_portable() && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just confirmed at runtime.
            #[allow(unsafe_code)]
            unsafe {
                avx2::reseed(
                    stage_seed_base,
                    first_frame,
                    &mut self.s0,
                    &mut self.s1,
                    &mut self.s2,
                    &mut self.s3,
                );
            }
            return;
        }
        self.reseed_portable(stage_seed_base, first_frame);
    }

    /// Re-seeds the bank as `seed_bases.len()` contiguous **segments** of
    /// `per_segment` lanes each: lane `r * per_segment + j` becomes the
    /// generator of frame `first_frame + j` under stage base
    /// `seed_bases[r]`. Segment `r` is therefore bit-identical to a
    /// standalone [`reseed`](LaneStreams::reseed) at `(seed_bases[r],
    /// first_frame, per_segment)` — this is what lets the replication-fused
    /// point engine stack R sessions' lanes side by side while each session
    /// keeps replaying its own per-frame streams word for word.
    ///
    /// `reseed_segments(&[base], first_frame, width)` is exactly
    /// `reseed(base, first_frame, width)`.
    pub fn reseed_segments(&mut self, seed_bases: &[u64], first_frame: u64, per_segment: usize) {
        let width = seed_bases.len() * per_segment;
        if self.s0.len() != width {
            self.s0.resize(width, 0);
            self.s1.resize(width, 0);
            self.s2.resize(width, 0);
            self.s3.resize(width, 0);
        }
        #[cfg(target_arch = "x86_64")]
        let use_avx2 = !force_portable() && std::arch::is_x86_feature_detected!("avx2");
        for (r, &base) in seed_bases.iter().enumerate() {
            let lo = r * per_segment;
            let hi = lo + per_segment;
            #[cfg(target_arch = "x86_64")]
            if use_avx2 {
                // SAFETY: AVX2 support was confirmed at runtime above.
                #[allow(unsafe_code)]
                unsafe {
                    avx2::reseed(
                        base,
                        first_frame,
                        &mut self.s0[lo..hi],
                        &mut self.s1[lo..hi],
                        &mut self.s2[lo..hi],
                        &mut self.s3[lo..hi],
                    );
                }
                continue;
            }
            reseed_portable_segment(
                base,
                first_frame,
                &mut self.s0[lo..hi],
                &mut self.s1[lo..hi],
                &mut self.s2[lo..hi],
                &mut self.s3[lo..hi],
            );
        }
    }

    /// Seeds the bank onto an absolute frame *range*: lane `j` owns frame
    /// `frames.start + j`, one lane per frame of the half-open range. This
    /// is the within-session range-split entry point — a worker handed
    /// frames `a..b` of a session seeds its lanes here and produces exactly
    /// the words those frames would see in a whole-session run, because
    /// lane seeding depends only on each frame's absolute index, never on
    /// where the batch grid starts. Equivalent to
    /// `reseed(stage_seed_base, frames.start, frames.len())`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or its width overflows `usize`.
    pub fn reseed_range(&mut self, stage_seed_base: u64, frames: std::ops::Range<u64>) {
        assert!(
            frames.start < frames.end,
            "lane range {}..{} must be non-empty",
            frames.start,
            frames.end
        );
        let width = usize::try_from(frames.end - frames.start).expect("lane range fits in usize");
        self.reseed(stage_seed_base, frames.start, width);
    }

    /// The portable seeding pass behind [`reseed`](LaneStreams::reseed);
    /// also the reference the AVX2 pass is pinned against.
    fn reseed_portable(&mut self, stage_seed_base: u64, first_frame: u64) {
        reseed_portable_segment(
            stage_seed_base,
            first_frame,
            &mut self.s0,
            &mut self.s1,
            &mut self.s2,
            &mut self.s3,
        );
    }

    /// Advances every lane one xoshiro256++ step, writing lane `j`'s next
    /// raw word to `out[j]` — one column of draws, in frame order.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from [`width`](LaneStreams::width).
    pub fn fill_next(&mut self, out: &mut [u64]) {
        assert_eq!(
            out.len(),
            self.s0.len(),
            "output column width must match the seeded lane count"
        );
        #[cfg(target_arch = "x86_64")]
        if !force_portable() && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just confirmed at runtime.
            #[allow(unsafe_code)]
            unsafe {
                avx2::fill_next(&mut self.s0, &mut self.s1, &mut self.s2, &mut self.s3, out);
            }
            return;
        }
        self.fill_next_portable(out);
    }

    /// The portable stepping pass behind [`fill_next`](LaneStreams::fill_next);
    /// also the reference the AVX2 pass is pinned against.
    fn fill_next_portable(&mut self, out: &mut [u64]) {
        let iter = out.iter_mut().zip(
            self.s0
                .iter_mut()
                .zip(self.s1.iter_mut())
                .zip(self.s2.iter_mut().zip(self.s3.iter_mut())),
        );
        for (out, ((s0, s1), (s2, s3))) in iter {
            // One xoshiro256++ step, identical to the shim's `next_u64`.
            *out = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
        }
    }
}

/// The portable seeding loop over one contiguous slice of each state
/// column: lane `j` of the slices becomes the generator of frame
/// `first_frame + j` under `stage_seed_base`. Shared by the whole-bank
/// portable pass and the per-segment fused path.
fn reseed_portable_segment(
    stage_seed_base: u64,
    first_frame: u64,
    s0: &mut [u64],
    s1: &mut [u64],
    s2: &mut [u64],
    s3: &mut [u64],
) {
    let iter = s0
        .iter_mut()
        .zip(s1.iter_mut())
        .zip(s2.iter_mut().zip(s3.iter_mut()))
        .enumerate();
    for (j, ((s0, s1), (s2, s3))) in iter {
        // `mix(stage_seed_base, frame)` followed by the shim's 4-word
        // SplitMix64 expansion, inlined so the whole derivation is one
        // branch-free pass over the lane columns.
        let mut state = crate::seed::mix(stage_seed_base, first_frame + j as u64);
        *s0 = splitmix64(&mut state);
        *s1 = splitmix64(&mut state);
        *s2 = splitmix64(&mut state);
        *s3 = splitmix64(&mut state);
    }
}

/// Four-lane AVX2 passes over the lane columns. Wrapping 64-bit integer
/// arithmetic is exact on every path, so these are bit-identical to the
/// portable loops by construction (and pinned by tests); the only reason
/// they exist is that 64-bit multiply/rotate chains do not autovectorize
/// profitably at baseline x86-64 codegen. Isolated in one module so the
/// `unsafe` SIMD surface stays small; the workspace otherwise denies
/// `unsafe_code`.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[deny(unsafe_op_in_unsafe_fn)]
mod avx2 {
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_loadu_si256, _mm256_mul_epu32, _mm256_or_si256,
        _mm256_set1_epi64x, _mm256_set_epi64x, _mm256_slli_epi64, _mm256_srli_epi64,
        _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Full 64×64→64-bit low multiply by a broadcast constant, synthesised
    /// from 32×32→64 partial products exactly like scalar `wrapping_mul`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mul_const(a: __m256i, b: u64) -> __m256i {
        let b_lo = _mm256_set1_epi64x((b & 0xFFFF_FFFF) as i64);
        let b_hi = _mm256_set1_epi64x((b >> 32) as i64);
        let a_hi = _mm256_srli_epi64::<32>(a);
        // a_lo·b_lo + ((a_lo·b_hi + a_hi·b_lo) << 32); the high×high part
        // only affects bits ≥ 64 and drops out of wrapping arithmetic.
        let low = _mm256_mul_epu32(a, b_lo);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b_lo));
        _mm256_add_epi64(low, _mm256_slli_epi64::<32>(cross))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn xor_shr<const N: i32>(z: __m256i) -> __m256i {
        _mm256_xor_si256(z, _mm256_srli_epi64::<N>(z))
    }

    /// One SplitMix64 output for four lane states at once (the states are
    /// advanced in place), matching the scalar `splitmix64` word for word.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn splitmix64x4(state: &mut __m256i) -> __m256i {
        *state = _mm256_add_epi64(*state, _mm256_set1_epi64x(super::SPLITMIX_GAMMA as i64));
        let mut z = *state;
        z = mul_const(xor_shr::<30>(z), 0xBF58_476D_1CE4_E5B9);
        z = mul_const(xor_shr::<27>(z), 0x94D0_49BB_1331_11EB);
        xor_shr::<31>(z)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn rotl<const N: i32, const M: i32>(z: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi64::<N>(z), _mm256_srli_epi64::<M>(z))
    }

    /// Four-lane [`super::LaneStreams::reseed`] body: `mix(stage_seed_base,
    /// first_frame + j)` then the 4-word SplitMix64 expansion, four lanes
    /// per iteration with a scalar tail.
    #[target_feature(enable = "avx2")]
    pub(super) fn reseed(
        stage_seed_base: u64,
        first_frame: u64,
        s0: &mut [u64],
        s1: &mut [u64],
        s2: &mut [u64],
        s3: &mut [u64],
    ) {
        let width = s0.len();
        let chunks = width / 4;
        for c in 0..chunks {
            let j = (c * 4) as u64;
            // `mix`: z = seed + GAMMA + lane·M, then two mul/xor-shift
            // rounds and a final xor-shift — the scalar expression per lane.
            let lanes = _mm256_set_epi64x(
                first_frame.wrapping_add(j + 3) as i64,
                first_frame.wrapping_add(j + 2) as i64,
                first_frame.wrapping_add(j + 1) as i64,
                first_frame.wrapping_add(j) as i64,
            );
            let mut z = _mm256_add_epi64(
                _mm256_set1_epi64x(stage_seed_base.wrapping_add(super::SPLITMIX_GAMMA) as i64),
                mul_const(lanes, 0xD1B5_4A32_D192_ED03),
            );
            z = mul_const(xor_shr::<30>(z), 0xBF58_476D_1CE4_E5B9);
            z = mul_const(xor_shr::<27>(z), 0x94D0_49BB_1331_11EB);
            let mut state = xor_shr::<31>(z);
            let w0 = splitmix64x4(&mut state);
            let w1 = splitmix64x4(&mut state);
            let w2 = splitmix64x4(&mut state);
            let w3 = splitmix64x4(&mut state);
            // SAFETY: `c * 4 + 4 <= width` and all four state slices share
            // that length, so each unaligned 32-byte store is in bounds.
            unsafe {
                _mm256_storeu_si256(s0.as_mut_ptr().add(c * 4).cast::<__m256i>(), w0);
                _mm256_storeu_si256(s1.as_mut_ptr().add(c * 4).cast::<__m256i>(), w1);
                _mm256_storeu_si256(s2.as_mut_ptr().add(c * 4).cast::<__m256i>(), w2);
                _mm256_storeu_si256(s3.as_mut_ptr().add(c * 4).cast::<__m256i>(), w3);
            }
        }
        for j in chunks * 4..width {
            let mut state = crate::seed::mix(stage_seed_base, first_frame + j as u64);
            s0[j] = super::splitmix64(&mut state);
            s1[j] = super::splitmix64(&mut state);
            s2[j] = super::splitmix64(&mut state);
            s3[j] = super::splitmix64(&mut state);
        }
    }

    /// Four-lane xoshiro256++ step ([`super::LaneStreams::fill_next`]
    /// body): pure add/xor/shift vector ops, four lanes per iteration with
    /// a scalar tail.
    #[target_feature(enable = "avx2")]
    pub(super) fn fill_next(
        s0: &mut [u64],
        s1: &mut [u64],
        s2: &mut [u64],
        s3: &mut [u64],
        out: &mut [u64],
    ) {
        let width = out.len();
        let chunks = width / 4;
        for c in 0..chunks {
            // SAFETY: `c * 4 + 4 <= width == out.len() == s*.len()`, so all
            // unaligned 32-byte loads and stores stay in bounds.
            unsafe {
                let p0 = s0.as_mut_ptr().add(c * 4).cast::<__m256i>();
                let p1 = s1.as_mut_ptr().add(c * 4).cast::<__m256i>();
                let p2 = s2.as_mut_ptr().add(c * 4).cast::<__m256i>();
                let p3 = s3.as_mut_ptr().add(c * 4).cast::<__m256i>();
                let mut v0 = _mm256_loadu_si256(p0);
                let mut v1 = _mm256_loadu_si256(p1);
                let mut v2 = _mm256_loadu_si256(p2);
                let mut v3 = _mm256_loadu_si256(p3);
                let result = _mm256_add_epi64(rotl::<23, 41>(_mm256_add_epi64(v0, v3)), v0);
                let t = _mm256_slli_epi64::<17>(v1);
                v2 = _mm256_xor_si256(v2, v0);
                v3 = _mm256_xor_si256(v3, v1);
                v1 = _mm256_xor_si256(v1, v2);
                v0 = _mm256_xor_si256(v0, v3);
                v2 = _mm256_xor_si256(v2, t);
                v3 = rotl::<45, 19>(v3);
                _mm256_storeu_si256(p0, v0);
                _mm256_storeu_si256(p1, v1);
                _mm256_storeu_si256(p2, v2);
                _mm256_storeu_si256(p3, v3);
                _mm256_storeu_si256(out.as_mut_ptr().add(c * 4).cast::<__m256i>(), result);
            }
        }
        for j in chunks * 4..width {
            out[j] = s0[j]
                .wrapping_add(s3[j])
                .rotate_left(23)
                .wrapping_add(s0[j]);
            let t = s1[j] << 17;
            s2[j] ^= s0[j];
            s3[j] ^= s1[j];
            s1[j] ^= s2[j];
            s0[j] ^= s3[j];
            s2[j] ^= t;
            s3[j] = s3[j].rotate_left(45);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// The scalar reference: draw `depth` words from each frame's own
    /// `StdRng`, exactly as the per-frame pipelines do.
    fn scalar_columns(stage_base: u64, first: u64, width: usize, depth: usize) -> Vec<Vec<u64>> {
        let mut columns = vec![vec![0u64; width]; depth];
        for j in 0..width {
            let mut rng = StdRng::seed_from_u64(seed::mix(stage_base, first + j as u64));
            for column in columns.iter_mut() {
                column[j] = rng.next_u64();
            }
        }
        columns
    }

    #[test]
    fn reseed_range_is_reseed_at_the_ranges_start() {
        let stage_base = seed::mix(7, 5);
        let mut by_range = LaneStreams::new();
        by_range.reseed_range(stage_base, 513..1025);
        let mut by_offset = LaneStreams::new();
        by_offset.reseed(stage_base, 513, 512);
        assert_eq!(by_range.width(), 512);
        let mut a = vec![0u64; 512];
        let mut b = vec![0u64; 512];
        for _ in 0..4 {
            by_range.fill_next(&mut a);
            by_offset.fill_next(&mut b);
            assert_eq!(a, b);
        }
        // And both equal the frames' own scalar streams.
        let reference = scalar_columns(stage_base, 513, 512, 1);
        let mut fresh = LaneStreams::new();
        fresh.reseed_range(stage_base, 513..1025);
        fresh.fill_next(&mut a);
        assert_eq!(a, reference[0]);
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_lane_ranges_panic() {
        LaneStreams::new().reseed_range(1, 9..9);
    }

    #[test]
    fn segments_replay_each_bases_own_streams() {
        // Each segment must be bit-identical to a standalone reseed of its
        // base — over segment widths that hit both the AVX2 main loop and
        // every scalar-tail length, and over several bases per bank.
        for per_segment in [1usize, 3, 5, 8, 21] {
            for bases in [1usize, 2, 3, 5] {
                let seed_bases: Vec<u64> = (0..bases)
                    .map(|r| seed::mix(2024, 1000 + r as u64))
                    .collect();
                let mut lanes = LaneStreams::new();
                lanes.reseed_segments(&seed_bases, 11, per_segment);
                assert_eq!(lanes.width(), bases * per_segment);
                let mut column = vec![0u64; bases * per_segment];
                for draw in 0..4 {
                    lanes.fill_next(&mut column);
                    for (r, &base) in seed_bases.iter().enumerate() {
                        let reference = scalar_columns(base, 11, per_segment, draw + 1);
                        assert_eq!(
                            &column[r * per_segment..(r + 1) * per_segment],
                            &reference[draw][..],
                            "segment {r} draw {draw} diverged at {bases}x{per_segment}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn one_segment_is_a_plain_reseed() {
        let base = seed::mix(7, 4);
        let mut segmented = LaneStreams::new();
        segmented.reseed_segments(&[base], 3, 17);
        let mut plain = LaneStreams::new();
        plain.reseed(base, 3, 17);
        let mut a = vec![0u64; 17];
        let mut b = vec![0u64; 17];
        for _ in 0..3 {
            segmented.fill_next(&mut a);
            plain.fill_next(&mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn lanes_replay_each_frames_stdrng_stream_bit_for_bit() {
        let mut lanes = LaneStreams::new();
        for (stage_base, first) in [
            (0u64, 0u64),
            (seed::mix(42, 3), 1),
            (u64::MAX, u64::MAX - 200),
        ] {
            for width in [1usize, 2, 3, 8, 64, 100] {
                let expected = scalar_columns(stage_base, first, width, 6);
                lanes.reseed(stage_base, first, width);
                assert_eq!(lanes.width(), width);
                let mut column = vec![0u64; width];
                for scalar_column in &expected {
                    lanes.fill_next(&mut column);
                    assert_eq!(&column, scalar_column, "width {width} diverged");
                }
            }
        }
    }

    #[test]
    fn output_is_lane_count_invariant() {
        // Frame 7's words must be the same whether it is lane 0 of a
        // width-1 bank, lane 2 of a width-5 bank, or lane 7 of width 64.
        let stage_base = seed::mix(2024, 5);
        let reference = scalar_columns(stage_base, 7, 1, 4);
        for (first, width, lane) in [(7u64, 1usize, 0usize), (5, 5, 2), (0, 64, 7)] {
            let mut lanes = LaneStreams::new();
            lanes.reseed(stage_base, first, width);
            let mut column = vec![0u64; width];
            for (d, scalar_column) in reference.iter().enumerate() {
                lanes.fill_next(&mut column);
                assert_eq!(
                    column[lane], scalar_column[0],
                    "draw {d} of frame 7 depends on lane position ({first}, {width}, {lane})"
                );
            }
        }
    }

    #[test]
    fn reseed_reuses_storage_and_supports_narrowing() {
        let mut lanes = LaneStreams::new();
        lanes.reseed(1, 0, 64);
        assert_eq!(lanes.width(), 64);
        // Narrow to a tail batch: widths shrink without stale lanes.
        lanes.reseed(1, 64, 9);
        assert_eq!(lanes.width(), 9);
        let expected = scalar_columns(1, 64, 9, 2);
        let mut column = vec![0u64; 9];
        lanes.fill_next(&mut column);
        assert_eq!(column, expected[0]);
        lanes.fill_next(&mut column);
        assert_eq!(column, expected[1]);
    }

    #[test]
    #[should_panic(expected = "output column width")]
    fn mismatched_column_width_is_rejected() {
        let mut lanes = LaneStreams::new();
        lanes.reseed(3, 0, 4);
        let mut column = vec![0u64; 5];
        lanes.fill_next(&mut column);
    }

    #[test]
    fn zero_width_bank_is_a_no_op() {
        let mut lanes = LaneStreams::new();
        lanes.reseed(9, 3, 0);
        assert_eq!(lanes.width(), 0);
        lanes.fill_next(&mut []);
    }

    #[test]
    fn simd_and_portable_passes_are_bit_identical() {
        // On AVX2 hosts the public entry points take the SIMD path; pin it
        // against the portable reference on widths that exercise both the
        // four-lane main loop and every tail length, over several draws.
        for width in [1usize, 2, 3, 4, 5, 7, 8, 63, 100, 257] {
            let mut simd = LaneStreams::new();
            simd.reseed(2024, 11, width);
            let mut portable = LaneStreams::new();
            portable.s0.resize(width, 0);
            portable.s1.resize(width, 0);
            portable.s2.resize(width, 0);
            portable.s3.resize(width, 0);
            portable.reseed_portable(2024, 11);
            assert_eq!(simd.s0, portable.s0, "seeded s0 diverged at {width}");
            assert_eq!(simd.s1, portable.s1, "seeded s1 diverged at {width}");
            assert_eq!(simd.s2, portable.s2, "seeded s2 diverged at {width}");
            assert_eq!(simd.s3, portable.s3, "seeded s3 diverged at {width}");
            let mut simd_col = vec![0u64; width];
            let mut portable_col = vec![0u64; width];
            for draw in 0..5 {
                simd.fill_next(&mut simd_col);
                portable.fill_next_portable(&mut portable_col);
                assert_eq!(simd_col, portable_col, "draw {draw} diverged at {width}");
            }
        }
    }
}
