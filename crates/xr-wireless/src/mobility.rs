//! Random-walk mobility and coverage-zone residence.
//!
//! The paper models XR-device mobility with a random walk and derives the
//! handoff probability `P(HO)` "using methods in existing papers such as
//! \[49\]" (a location-register residence-time analysis). We implement a
//! two-dimensional random walk inside a circular coverage zone and expose
//! both the analytic boundary-crossing probability per frame interval and a
//! Monte-Carlo trajectory generator used by the testbed simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xr_types::{Meters, MetersPerSecond, Seconds};

/// A circular wireless coverage zone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageZone {
    radius: Meters,
}

impl CoverageZone {
    /// Creates a zone with the given radius.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not strictly positive.
    #[must_use]
    pub fn new(radius: Meters) -> Self {
        assert!(radius.is_positive(), "coverage radius must be positive");
        Self { radius }
    }

    /// Zone radius.
    #[must_use]
    pub fn radius(&self) -> Meters {
        self.radius
    }

    /// Returns `true` when a point at distance `r` from the access point is
    /// still covered.
    #[must_use]
    pub fn covers(&self, r: Meters) -> bool {
        r <= self.radius
    }
}

/// Two-dimensional random-walk mobility of an XR device inside a coverage
/// zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWalkMobility {
    speed: MetersPerSecond,
    step_interval: Seconds,
    zone: CoverageZone,
}

impl RandomWalkMobility {
    /// Creates a mobility model: the device moves at `speed`, choosing a
    /// uniformly random direction every `step_interval`.
    ///
    /// # Panics
    ///
    /// Panics if speed or step interval are negative, or the interval is zero.
    #[must_use]
    pub fn new(speed: MetersPerSecond, step_interval: Seconds, zone: CoverageZone) -> Self {
        assert!(speed.as_f64() >= 0.0, "speed must be non-negative");
        assert!(
            step_interval.is_positive(),
            "step interval must be positive"
        );
        Self {
            speed,
            step_interval,
            zone,
        }
    }

    /// Device speed.
    #[must_use]
    pub fn speed(&self) -> MetersPerSecond {
        self.speed
    }

    /// The coverage zone the walk takes place in.
    #[must_use]
    pub fn zone(&self) -> CoverageZone {
        self.zone
    }

    /// Analytic approximation of the probability that the device crosses the
    /// coverage boundary during an observation window of length `window`
    /// (e.g. one frame processing time), given that its position is uniformly
    /// distributed over the zone.
    ///
    /// For a random walk the escape probability over a short window is well
    /// approximated by the fraction of the zone's area lying within one
    /// expected displacement `ℓ = v·t` of the boundary:
    /// `P(HO) ≈ 1 − ((R − ℓ)/R)²`, clamped to `[0, 1]`.
    ///
    /// **Single-zone analytic assumption.** This closed form models the
    /// paper's setting of *one* circular zone that the device re-enters
    /// uniformly after every crossing; it knows nothing about neighbouring
    /// sites. On a multi-site map — [`crate::topology::EdgeTopology`] — the
    /// crossing rate per site follows the same law (each site is a circular
    /// zone of its own radius), but which crossings become inter-site
    /// *migrations* depends on the layout's overlap geometry; use
    /// [`crate::topology::TopologyWalker`] to simulate that instead of this
    /// approximation.
    #[must_use]
    pub fn handoff_probability(&self, window: Seconds) -> f64 {
        let displacement = self.speed.as_f64() * window.as_f64().max(0.0);
        let radius = self.zone.radius.as_f64();
        if displacement >= radius {
            return 1.0;
        }
        let inner = (radius - displacement) / radius;
        (1.0 - inner * inner).clamp(0.0, 1.0)
    }

    /// Expected residence time inside the zone before a boundary crossing,
    /// `E[T] ≈ R / v` for a uniformly random starting point (infinite for a
    /// static device).
    ///
    /// **Single-zone analytic assumption.** `R` here is the radius of the
    /// one-and-only coverage zone. On an [`crate::topology::EdgeTopology`]
    /// the per-site residence time uses each site's own radius, and the
    /// session's dwell time at a site additionally depends on whether the
    /// exit migrates it to a neighbour or drops it into a coverage hole
    /// (uniform re-entry); [`crate::topology::TopologyWalker`] is the
    /// simulated generalisation.
    #[must_use]
    pub fn expected_residence_time(&self) -> Seconds {
        if self.speed.as_f64() <= 0.0 {
            return Seconds::new(f64::INFINITY);
        }
        Seconds::new(self.zone.radius.as_f64() / self.speed.as_f64())
    }

    /// Number of walk steps covering an observation window of length
    /// `window` (at least one).
    #[must_use]
    pub fn steps_per_window(&self, window: Seconds) -> usize {
        (window.as_f64() / self.step_interval.as_f64())
            .ceil()
            .max(1.0) as usize
    }

    /// Starts a stateful walk of this mobility model from the zone centre.
    #[must_use]
    pub fn walker(&self, seed: u64) -> RandomWalker {
        RandomWalker::new(self, seed)
    }

    /// Simulates a trajectory of `steps` random-walk steps starting from the
    /// zone centre and returns the radial distance after each step. Used by
    /// the testbed simulator to produce ground-truth handoff events.
    #[must_use]
    pub fn simulate_radii(&self, steps: usize, seed: u64) -> Vec<Meters> {
        let mut walker = self.walker(seed);
        (0..steps).map(|_| walker.step()).collect()
    }

    /// Monte-Carlo estimate of the handoff probability over `window`,
    /// averaged over `trials` walks from uniformly random starting points.
    /// Used in tests to validate [`Self::handoff_probability`].
    #[must_use]
    pub fn simulate_handoff_probability(&self, window: Seconds, trials: usize, seed: u64) -> f64 {
        let mut walker = self.walker(seed);
        let steps = self.steps_per_window(window);
        let mut crossings = 0usize;
        for _ in 0..trials {
            walker.reset_uniform();
            let mut crossed = false;
            for _ in 0..steps {
                walker.step();
                if walker.is_outside() {
                    crossed = true;
                    break;
                }
            }
            crossings += usize::from(crossed);
        }
        crossings as f64 / trials.max(1) as f64
    }
}

/// A stateful two-dimensional random walk inside a coverage zone.
///
/// This is the single walk stepper behind every mobility consumer in the
/// workspace: [`RandomWalkMobility::simulate_radii`],
/// [`RandomWalkMobility::simulate_handoff_probability`], and the testbed
/// simulator's session loop all advance one of these instead of re-rolling
/// their own `theta`/step loops. The walker owns its RNG, so its draw stream
/// is independent of any per-frame measurement noise.
#[derive(Debug, Clone)]
pub struct RandomWalker {
    x: f64,
    y: f64,
    step_len: f64,
    step_interval: Seconds,
    zone: CoverageZone,
    rng: StdRng,
    /// Un-stepped time carried between `advance` calls, so windows shorter
    /// than one step interval still accumulate into whole steps.
    carry: f64,
}

impl RandomWalker {
    /// A walker for `mobility` starting at the zone centre, with its own
    /// deterministic RNG stream derived from `seed`.
    #[must_use]
    pub fn new(mobility: &RandomWalkMobility, seed: u64) -> Self {
        Self {
            x: 0.0,
            y: 0.0,
            step_len: mobility.speed.as_f64() * mobility.step_interval.as_f64(),
            step_interval: mobility.step_interval,
            zone: mobility.zone,
            rng: StdRng::seed_from_u64(seed),
            carry: 0.0,
        }
    }

    /// Moves the device back to the zone centre (the carry-over time is
    /// kept, only the position resets).
    pub fn reset_to_center(&mut self) {
        self.x = 0.0;
        self.y = 0.0;
    }

    /// Repositions the device uniformly at random inside the zone — the
    /// position distribution the analytic handoff probability assumes, via
    /// rejection-free sqrt sampling.
    pub fn reset_uniform(&mut self) {
        let r0 = self.zone.radius().as_f64() * self.rng.gen::<f64>().sqrt();
        let a0 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        self.x = r0 * a0.cos();
        self.y = r0 * a0.sin();
    }

    /// Takes one walk step in a uniformly random direction and returns the
    /// new radial distance from the access point.
    pub fn step(&mut self) -> Meters {
        let theta = self.rng.gen_range(0.0..std::f64::consts::TAU);
        self.x += self.step_len * theta.cos();
        self.y += self.step_len * theta.sin();
        self.radius()
    }

    /// Current radial distance from the access point.
    #[must_use]
    pub fn radius(&self) -> Meters {
        Meters::new((self.x * self.x + self.y * self.y).sqrt())
    }

    /// `true` when the device is currently outside the coverage zone.
    #[must_use]
    pub fn is_outside(&self) -> bool {
        !self.zone.covers(self.radius())
    }

    /// Advances the walk by `window` of wall-clock time, stepping once per
    /// elapsed step interval (fractional intervals carry over to the next
    /// call). Every boundary crossing counts as one handoff, after which the
    /// device re-enters service uniformly inside the (new) zone. Returns the
    /// number of handoffs in the window.
    pub fn advance(&mut self, window: Seconds) -> usize {
        self.carry += window.as_f64().max(0.0);
        let interval = self.step_interval.as_f64();
        let mut crossings = 0usize;
        while self.carry >= interval {
            self.carry -= interval;
            self.step();
            if self.is_outside() {
                crossings += 1;
                self.reset_uniform();
            }
        }
        crossings
    }

    /// Advances the walk through a whole batch of consecutive observation
    /// windows and returns the number of handoffs in each — exactly
    /// [`RandomWalker::advance`] applied to every window in order, exposed
    /// as one call so batched consumers (the testbed's structure-of-arrays
    /// frame engine) can run the sequential mobility scan as a single
    /// carry-preserving step per batch.
    #[must_use]
    pub fn advance_many(&mut self, windows: &[Seconds]) -> Vec<usize> {
        let mut crossings = Vec::with_capacity(windows.len());
        self.advance_many_into(windows, &mut crossings);
        crossings
    }

    /// [`RandomWalker::advance_many`] into a caller-provided buffer, so a
    /// batch loop can reuse one crossings allocation for the whole session.
    /// The buffer is cleared first; afterwards `crossings[i]` holds the
    /// handoff count of `windows[i]`.
    pub fn advance_many_into(&mut self, windows: &[Seconds], crossings: &mut Vec<usize>) {
        crossings.clear();
        crossings.extend(windows.iter().map(|&window| self.advance(window)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pedestrian() -> RandomWalkMobility {
        RandomWalkMobility::new(
            MetersPerSecond::new(1.4),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(30.0)),
        )
    }

    #[test]
    fn static_device_never_hands_off() {
        let m = RandomWalkMobility::new(
            MetersPerSecond::new(0.0),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(30.0)),
        );
        assert_eq!(m.handoff_probability(Seconds::new(1.0)), 0.0);
        assert!(m.expected_residence_time().as_f64().is_infinite());
    }

    #[test]
    fn faster_devices_hand_off_more() {
        let walk = pedestrian();
        let vehicle = RandomWalkMobility::new(
            MetersPerSecond::new(15.0),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(30.0)),
        );
        let window = Seconds::new(0.5);
        assert!(vehicle.handoff_probability(window) > walk.handoff_probability(window));
    }

    #[test]
    fn probability_bounded_and_monotone_in_window() {
        let m = pedestrian();
        let mut last = 0.0;
        for w in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let p = m.handoff_probability(Seconds::new(w));
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last);
            last = p;
        }
        // Displacement beyond the radius forces a handoff.
        assert_eq!(m.handoff_probability(Seconds::new(1e6)), 1.0);
    }

    #[test]
    fn analytic_probability_upper_bounds_monte_carlo() {
        let m = RandomWalkMobility::new(
            MetersPerSecond::new(5.0),
            Seconds::new(0.05),
            CoverageZone::new(Meters::new(25.0)),
        );
        let window = Seconds::new(0.5);
        let analytic = m.handoff_probability(window);
        let simulated = m.simulate_handoff_probability(window, 20_000, 99);
        // The analytic form is a fluid-flow (straight-line displacement)
        // approximation, which is a conservative upper bound on the zig-zag
        // random walk's boundary-crossing probability. It should dominate the
        // Monte-Carlo estimate but not by an absurd margin.
        assert!(
            analytic >= simulated,
            "analytic {analytic} should upper-bound simulated {simulated}"
        );
        assert!(
            analytic - simulated < 0.25,
            "analytic {analytic} too far above simulated {simulated}"
        );
    }

    #[test]
    fn trajectory_is_deterministic_and_bounded_by_steps() {
        let m = pedestrian();
        let a = m.simulate_radii(100, 5);
        let b = m.simulate_radii(100, 5);
        assert_eq!(a, b);
        let step_len = m.speed().as_f64() * 0.1;
        for (i, r) in a.iter().enumerate() {
            assert!(r.as_f64() <= step_len * (i + 1) as f64 + 1e-9);
        }
    }

    #[test]
    fn residence_time_and_zone_cover() {
        let m = pedestrian();
        assert!((m.expected_residence_time().as_f64() - 30.0 / 1.4).abs() < 1e-9);
        assert!(m.zone().covers(Meters::new(29.0)));
        assert!(!m.zone().covers(Meters::new(31.0)));
        assert_eq!(m.zone().radius(), Meters::new(30.0));
    }

    #[test]
    fn walker_matches_simulate_radii_and_counts_crossings() {
        let m = pedestrian();
        // The trajectory helper is literally the walker, step by step.
        let radii = m.simulate_radii(50, 123);
        let mut walker = m.walker(123);
        for r in &radii {
            assert_eq!(walker.step(), *r);
        }
        // A fast walker in a tiny zone must cross within a few seconds.
        let sprint = RandomWalkMobility::new(
            MetersPerSecond::new(25.0),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(5.0)),
        );
        let mut walker = sprint.walker(7);
        let mut crossings = 0usize;
        for _ in 0..300 {
            crossings += walker.advance(Seconds::new(1.0 / 30.0));
        }
        assert!(crossings > 0, "fast walker never left a 5 m zone");
        // After a crossing the walker re-enters coverage.
        assert!(!walker.is_outside() || walker.advance(Seconds::new(0.1)) > 0);
    }

    #[test]
    fn advance_many_equals_repeated_advance() {
        let sprint = RandomWalkMobility::new(
            MetersPerSecond::new(20.0),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(6.0)),
        );
        // Mixed window lengths, including sub-step windows that only
        // accumulate carry; the batched call must reproduce the scalar
        // crossing counts and leave the walker in the same state.
        let windows: Vec<Seconds> = (0..120)
            .map(|i| {
                Seconds::new(match i % 3 {
                    0 => 1.0 / 30.0,
                    1 => 0.25,
                    _ => 0.01,
                })
            })
            .collect();
        let mut scalar = sprint.walker(31);
        let mut batched = sprint.walker(31);
        let expected: Vec<usize> = windows.iter().map(|&w| scalar.advance(w)).collect();
        let got = batched.advance_many(&windows);
        assert_eq!(got, expected);
        // The buffer-reusing form clears stale contents and matches too.
        let mut reused = sprint.walker(31);
        let mut buffer = vec![999usize; 3];
        reused.advance_many_into(&windows, &mut buffer);
        assert_eq!(buffer, expected);
        assert!(got.iter().sum::<usize>() > 0, "sprint never crossed");
        assert_eq!(batched.radius(), scalar.radius());
        assert_eq!(
            batched.advance(Seconds::new(0.5)),
            scalar.advance(Seconds::new(0.5))
        );
    }

    #[test]
    fn walker_accumulates_fractional_windows() {
        let m = pedestrian();
        // 1/30 s frames against a 0.1 s step interval: exactly one step per
        // three frames, no drift.
        let mut walker = m.walker(11);
        let mut twin = m.walker(11);
        for _ in 0..30 {
            walker.advance(Seconds::new(0.1 / 3.0));
        }
        for _ in 0..10 {
            twin.step();
        }
        assert_eq!(walker.radius(), twin.radius());
    }

    #[test]
    fn static_walker_stays_at_origin() {
        let m = RandomWalkMobility::new(
            MetersPerSecond::new(0.0),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(30.0)),
        );
        let mut walker = m.walker(3);
        assert_eq!(walker.advance(Seconds::new(10.0)), 0);
        assert_eq!(walker.radius(), Meters::new(0.0));
        walker.reset_uniform();
        assert!(!walker.is_outside());
        walker.reset_to_center();
        assert_eq!(walker.radius(), Meters::new(0.0));
        assert_eq!(m.steps_per_window(Seconds::new(0.35)), 4);
        assert_eq!(m.steps_per_window(Seconds::new(0.0)), 1);
    }

    #[test]
    #[should_panic(expected = "coverage radius must be positive")]
    fn zero_radius_rejected() {
        let _ = CoverageZone::new(Meters::new(0.0));
    }

    #[test]
    #[should_panic(expected = "step interval must be positive")]
    fn zero_step_rejected() {
        let _ = RandomWalkMobility::new(
            MetersPerSecond::new(1.0),
            Seconds::ZERO,
            CoverageZone::new(Meters::new(10.0)),
        );
    }
}
