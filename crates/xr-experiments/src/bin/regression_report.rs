//! Regression-fit report: R² of the four regression sub-models, against the
//! paper's published values.

use xr_experiments::{output, ExperimentContext, RegressionReport};

fn main() {
    let ctx = ExperimentContext::from_args();
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let records = if paper_scale { 119_465 } else { 20_000 };
    let report = RegressionReport::compute(&ctx, records).expect("regression report failed");
    output::print_experiment(
        "Regression sub-model fits (R²)",
        &["model", "train_R2", "held_out_R2", "paper_R2"],
        &report.rows(),
        "regression_report.csv",
    );
    println!(
        "training records: {}, held-out records: {} (paper: 119,465 / 36,083)",
        report.train_records, report.test_records
    );
}
