//! Random-walk mobility and coverage-zone residence.
//!
//! The paper models XR-device mobility with a random walk and derives the
//! handoff probability `P(HO)` "using methods in existing papers such as
//! \[49\]" (a location-register residence-time analysis). We implement a
//! two-dimensional random walk inside a circular coverage zone and expose
//! both the analytic boundary-crossing probability per frame interval and a
//! Monte-Carlo trajectory generator used by the testbed simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xr_types::{Meters, MetersPerSecond, Seconds};

/// A circular wireless coverage zone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageZone {
    radius: Meters,
}

impl CoverageZone {
    /// Creates a zone with the given radius.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not strictly positive.
    #[must_use]
    pub fn new(radius: Meters) -> Self {
        assert!(radius.is_positive(), "coverage radius must be positive");
        Self { radius }
    }

    /// Zone radius.
    #[must_use]
    pub fn radius(&self) -> Meters {
        self.radius
    }

    /// Returns `true` when a point at distance `r` from the access point is
    /// still covered.
    #[must_use]
    pub fn covers(&self, r: Meters) -> bool {
        r <= self.radius
    }
}

/// Two-dimensional random-walk mobility of an XR device inside a coverage
/// zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWalkMobility {
    speed: MetersPerSecond,
    step_interval: Seconds,
    zone: CoverageZone,
}

impl RandomWalkMobility {
    /// Creates a mobility model: the device moves at `speed`, choosing a
    /// uniformly random direction every `step_interval`.
    ///
    /// # Panics
    ///
    /// Panics if speed or step interval are negative, or the interval is zero.
    #[must_use]
    pub fn new(speed: MetersPerSecond, step_interval: Seconds, zone: CoverageZone) -> Self {
        assert!(speed.as_f64() >= 0.0, "speed must be non-negative");
        assert!(
            step_interval.is_positive(),
            "step interval must be positive"
        );
        Self {
            speed,
            step_interval,
            zone,
        }
    }

    /// Device speed.
    #[must_use]
    pub fn speed(&self) -> MetersPerSecond {
        self.speed
    }

    /// The coverage zone the walk takes place in.
    #[must_use]
    pub fn zone(&self) -> CoverageZone {
        self.zone
    }

    /// Analytic approximation of the probability that the device crosses the
    /// coverage boundary during an observation window of length `window`
    /// (e.g. one frame processing time), given that its position is uniformly
    /// distributed over the zone.
    ///
    /// For a random walk the escape probability over a short window is well
    /// approximated by the fraction of the zone's area lying within one
    /// expected displacement `ℓ = v·t` of the boundary:
    /// `P(HO) ≈ 1 − ((R − ℓ)/R)²`, clamped to `[0, 1]`.
    #[must_use]
    pub fn handoff_probability(&self, window: Seconds) -> f64 {
        let displacement = self.speed.as_f64() * window.as_f64().max(0.0);
        let radius = self.zone.radius.as_f64();
        if displacement >= radius {
            return 1.0;
        }
        let inner = (radius - displacement) / radius;
        (1.0 - inner * inner).clamp(0.0, 1.0)
    }

    /// Expected residence time inside the zone before a boundary crossing,
    /// `E[T] ≈ R / v` for a uniformly random starting point (infinite for a
    /// static device).
    #[must_use]
    pub fn expected_residence_time(&self) -> Seconds {
        if self.speed.as_f64() <= 0.0 {
            return Seconds::new(f64::INFINITY);
        }
        Seconds::new(self.zone.radius.as_f64() / self.speed.as_f64())
    }

    /// Simulates a trajectory of `steps` random-walk steps starting from the
    /// zone centre and returns the radial distance after each step. Used by
    /// the testbed simulator to produce ground-truth handoff events.
    #[must_use]
    pub fn simulate_radii(&self, steps: usize, seed: u64) -> Vec<Meters> {
        let mut rng = StdRng::seed_from_u64(seed);
        let step_len = self.speed.as_f64() * self.step_interval.as_f64();
        let (mut x, mut y) = (0.0_f64, 0.0_f64);
        let mut radii = Vec::with_capacity(steps);
        for _ in 0..steps {
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            x += step_len * theta.cos();
            y += step_len * theta.sin();
            radii.push(Meters::new((x * x + y * y).sqrt()));
        }
        radii
    }

    /// Monte-Carlo estimate of the handoff probability over `window`,
    /// averaged over `trials` walks from uniformly random starting points.
    /// Used in tests to validate [`Self::handoff_probability`].
    #[must_use]
    pub fn simulate_handoff_probability(&self, window: Seconds, trials: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let radius = self.zone.radius.as_f64();
        let steps = (window.as_f64() / self.step_interval.as_f64())
            .ceil()
            .max(1.0) as usize;
        let step_len = self.speed.as_f64() * self.step_interval.as_f64();
        let mut crossings = 0usize;
        for _ in 0..trials {
            // Uniform point in the disc via rejection-free sqrt sampling.
            let r0 = radius * rng.gen::<f64>().sqrt();
            let a0 = rng.gen_range(0.0..std::f64::consts::TAU);
            let (mut x, mut y) = (r0 * a0.cos(), r0 * a0.sin());
            let mut crossed = false;
            for _ in 0..steps {
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                x += step_len * theta.cos();
                y += step_len * theta.sin();
                if (x * x + y * y).sqrt() > radius {
                    crossed = true;
                    break;
                }
            }
            crossings += usize::from(crossed);
        }
        crossings as f64 / trials.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pedestrian() -> RandomWalkMobility {
        RandomWalkMobility::new(
            MetersPerSecond::new(1.4),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(30.0)),
        )
    }

    #[test]
    fn static_device_never_hands_off() {
        let m = RandomWalkMobility::new(
            MetersPerSecond::new(0.0),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(30.0)),
        );
        assert_eq!(m.handoff_probability(Seconds::new(1.0)), 0.0);
        assert!(m.expected_residence_time().as_f64().is_infinite());
    }

    #[test]
    fn faster_devices_hand_off_more() {
        let walk = pedestrian();
        let vehicle = RandomWalkMobility::new(
            MetersPerSecond::new(15.0),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(30.0)),
        );
        let window = Seconds::new(0.5);
        assert!(vehicle.handoff_probability(window) > walk.handoff_probability(window));
    }

    #[test]
    fn probability_bounded_and_monotone_in_window() {
        let m = pedestrian();
        let mut last = 0.0;
        for w in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let p = m.handoff_probability(Seconds::new(w));
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last);
            last = p;
        }
        // Displacement beyond the radius forces a handoff.
        assert_eq!(m.handoff_probability(Seconds::new(1e6)), 1.0);
    }

    #[test]
    fn analytic_probability_upper_bounds_monte_carlo() {
        let m = RandomWalkMobility::new(
            MetersPerSecond::new(5.0),
            Seconds::new(0.05),
            CoverageZone::new(Meters::new(25.0)),
        );
        let window = Seconds::new(0.5);
        let analytic = m.handoff_probability(window);
        let simulated = m.simulate_handoff_probability(window, 20_000, 99);
        // The analytic form is a fluid-flow (straight-line displacement)
        // approximation, which is a conservative upper bound on the zig-zag
        // random walk's boundary-crossing probability. It should dominate the
        // Monte-Carlo estimate but not by an absurd margin.
        assert!(
            analytic >= simulated,
            "analytic {analytic} should upper-bound simulated {simulated}"
        );
        assert!(
            analytic - simulated < 0.25,
            "analytic {analytic} too far above simulated {simulated}"
        );
    }

    #[test]
    fn trajectory_is_deterministic_and_bounded_by_steps() {
        let m = pedestrian();
        let a = m.simulate_radii(100, 5);
        let b = m.simulate_radii(100, 5);
        assert_eq!(a, b);
        let step_len = m.speed().as_f64() * 0.1;
        for (i, r) in a.iter().enumerate() {
            assert!(r.as_f64() <= step_len * (i + 1) as f64 + 1e-9);
        }
    }

    #[test]
    fn residence_time_and_zone_cover() {
        let m = pedestrian();
        assert!((m.expected_residence_time().as_f64() - 30.0 / 1.4).abs() < 1e-9);
        assert!(m.zone().covers(Meters::new(29.0)));
        assert!(!m.zone().covers(Meters::new(31.0)));
        assert_eq!(m.zone().radius(), Meters::new(30.0));
    }

    #[test]
    #[should_panic(expected = "coverage radius must be positive")]
    fn zero_radius_rejected() {
        let _ = CoverageZone::new(Meters::new(0.0));
    }

    #[test]
    #[should_panic(expected = "step interval must be positive")]
    fn zero_step_rejected() {
        let _ = RandomWalkMobility::new(
            MetersPerSecond::new(1.0),
            Seconds::ZERO,
            CoverageZone::new(Meters::new(10.0)),
        );
    }
}
