//! A discrete-event simulation of the M/M/1 input buffer.
//!
//! The testbed simulator uses [`MM1Simulator`] to generate ground-truth
//! buffering delays (with sampling noise and transient effects), while the
//! analytical model uses the closed forms of [`crate::MM1Queue`]. Comparing
//! the two is exactly the validation exercise of Sections IV/VI.

use crate::des::EventQueue;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use xr_types::{Error, Result, Seconds};

/// Configurable discrete-event simulator of a single-server queue with
/// Poisson arrivals and exponential service times.
#[derive(Debug, Clone)]
pub struct MM1Simulator {
    arrival_rate: f64,
    service_rate: f64,
    seed: u64,
    warmup_customers: usize,
}

/// Aggregate statistics from one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Number of customers whose sojourn contributed to the statistics
    /// (arrivals after the warm-up period).
    pub completed: usize,
    /// Mean simulated time in system.
    pub mean_time_in_system: Seconds,
    /// Mean simulated waiting time (time in system minus service time).
    pub mean_waiting_time: Seconds,
    /// Mean number in system, estimated by time-averaging.
    pub mean_number_in_system: f64,
    /// Fraction of simulated time the server was busy.
    pub utilization: f64,
}

/// Internal DES event alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueEvent {
    Arrival,
    Departure,
}

impl MM1Simulator {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive rates. Unstable settings (`λ ≥ µ`)
    /// are *allowed* here — simulating an overloaded buffer is a legitimate
    /// failure-injection experiment — but the report's means will then keep
    /// growing with the horizon.
    pub fn new(arrival_rate: f64, service_rate: f64, seed: u64) -> Result<Self> {
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(Error::invalid_parameter(
                "arrival_rate",
                "must be positive and finite",
            ));
        }
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(Error::invalid_parameter(
                "service_rate",
                "must be positive and finite",
            ));
        }
        Ok(Self {
            arrival_rate,
            service_rate,
            seed,
            warmup_customers: 0,
        })
    }

    /// Discards the first `n` customers from the statistics to remove the
    /// empty-system transient.
    #[must_use]
    pub fn with_warmup(mut self, n: usize) -> Self {
        self.warmup_customers = n;
        self
    }

    /// Runs the simulation until `customers` measured arrivals have been
    /// *served* (after the `with_warmup` customers are served and discarded)
    /// and returns aggregate statistics, so `completed == customers`.
    ///
    /// Every statistic shares one measurement window: the sojourn averages
    /// count exactly the `customers` post-warm-up departures, and the
    /// time-averaged statistics (`mean_number_in_system`, `utilization`)
    /// integrate from the warm-up boundary (the time of the last warm-up
    /// departure) instead of from `t = 0`, so the empty-system transient
    /// biases neither.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `customers` is zero.
    pub fn run(&self, customers: usize) -> Result<SimulationReport> {
        if customers == 0 {
            return Err(Error::invalid_parameter("customers", "must be at least 1"));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let interarrival = Exp::new(self.arrival_rate)
            .map_err(|_| Error::invalid_parameter("arrival_rate", "rejected by Exp"))?;
        let service = Exp::new(self.service_rate)
            .map_err(|_| Error::invalid_parameter("service_rate", "rejected by Exp"))?;

        let mut events: EventQueue<QueueEvent> = EventQueue::new();
        events.schedule_after(
            Seconds::new(interarrival.sample(&mut rng)),
            QueueEvent::Arrival,
        );

        // Queue of (arrival_time, service_time) for waiting customers; the
        // customer in service keeps its entry at the front.
        let mut in_system: VecDeque<(Seconds, Seconds)> = VecDeque::new();
        let total_to_serve = customers + self.warmup_customers;
        let mut arrivals = 0usize;
        let mut served = 0usize;
        let mut total_sojourn = 0.0;
        let mut total_wait = 0.0;
        let mut counted = 0usize;

        // Time-average accumulators. Integration starts at the warm-up
        // boundary so the time averages share the sojourn statistics'
        // measurement window; with no warm-up it starts at t = 0.
        let mut measuring = self.warmup_customers == 0;
        let mut measure_start = Seconds::ZERO;
        let mut last_time = Seconds::ZERO;
        let mut area_customers = 0.0;
        let mut busy_time = 0.0;

        while served < total_to_serve {
            let Some(event) = events.pop() else { break };
            if measuring {
                let dt = (event.time - last_time).as_f64();
                area_customers += dt * in_system.len() as f64;
                if !in_system.is_empty() {
                    busy_time += dt;
                }
            }
            last_time = event.time;

            match event.payload {
                QueueEvent::Arrival => {
                    arrivals += 1;
                    let service_time = Seconds::new(service.sample(&mut rng));
                    let idle = in_system.is_empty();
                    in_system.push_back((event.time, service_time));
                    if idle {
                        events.schedule_after(service_time, QueueEvent::Departure);
                    }
                    // Generate exactly the arrivals that will be served, so no
                    // customer enters the system without completing.
                    if arrivals < total_to_serve {
                        events.schedule_after(
                            Seconds::new(interarrival.sample(&mut rng)),
                            QueueEvent::Arrival,
                        );
                    }
                }
                QueueEvent::Departure => {
                    let (arrival_time, service_time) = in_system
                        .pop_front()
                        .expect("departure without a customer in system");
                    served += 1;
                    if served > self.warmup_customers {
                        let sojourn = (event.time - arrival_time).as_f64();
                        total_sojourn += sojourn;
                        total_wait += sojourn - service_time.as_f64();
                        counted += 1;
                    } else if served == self.warmup_customers {
                        measuring = true;
                        measure_start = event.time;
                    }
                    if let Some(&(_, next_service)) = in_system.front() {
                        events.schedule_after(next_service, QueueEvent::Departure);
                    }
                }
            }
        }

        let horizon = (last_time - measure_start).as_f64().max(f64::EPSILON);
        Ok(SimulationReport {
            completed: counted,
            mean_time_in_system: Seconds::new(total_sojourn / counted.max(1) as f64),
            mean_waiting_time: Seconds::new((total_wait / counted.max(1) as f64).max(0.0)),
            mean_number_in_system: area_customers / horizon,
            utilization: busy_time / horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::MM1Queue;

    #[test]
    fn simulation_matches_analytic_sojourn_time() {
        let (lambda, mu) = (200.0, 1000.0);
        let sim = MM1Simulator::new(lambda, mu, 7).unwrap().with_warmup(2_000);
        let report = sim.run(60_000).unwrap();
        let analytic = MM1Queue::new(lambda, mu).unwrap();
        let rel_err =
            (report.mean_time_in_system.as_f64() - analytic.mean_time_in_system().as_f64()).abs()
                / analytic.mean_time_in_system().as_f64();
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn simulation_matches_analytic_utilization_and_length() {
        let (lambda, mu) = (400.0, 1000.0);
        let sim = MM1Simulator::new(lambda, mu, 11)
            .unwrap()
            .with_warmup(2_000);
        let report = sim.run(60_000).unwrap();
        assert_eq!(report.completed, 60_000);
        let analytic = MM1Queue::new(lambda, mu).unwrap();
        // Tight tolerances: with the time averages measured over the same
        // post-warm-up window as the sojourn statistics, the empty-system
        // transient no longer biases them low.
        assert!((report.utilization - analytic.utilization()).abs() < 0.01);
        assert!(
            (report.mean_number_in_system - analytic.mean_number_in_system()).abs()
                / analytic.mean_number_in_system()
                < 0.05
        );
    }

    #[test]
    fn waiting_time_below_sojourn_time() {
        let sim = MM1Simulator::new(100.0, 300.0, 3).unwrap().with_warmup(500);
        let report = sim.run(20_000).unwrap();
        assert!(report.mean_waiting_time < report.mean_time_in_system);
        assert!(report.completed > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            MM1Simulator::new(150.0, 500.0, seed)
                .unwrap()
                .run(5_000)
                .unwrap()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(MM1Simulator::new(0.0, 1.0, 0).is_err());
        assert!(MM1Simulator::new(1.0, -1.0, 0).is_err());
        let sim = MM1Simulator::new(1.0, 2.0, 0).unwrap().with_warmup(10);
        assert!(sim.run(0).is_err());
    }

    #[test]
    fn completed_equals_requested_customers_with_warmup() {
        // `run(n)` serves the warm-up customers *plus* n measured customers,
        // and every generated arrival completes service.
        for (warmup, customers) in [(0usize, 100usize), (50, 100), (100, 100), (500, 20)] {
            let sim = MM1Simulator::new(100.0, 300.0, 9)
                .unwrap()
                .with_warmup(warmup);
            let report = sim.run(customers).unwrap();
            assert_eq!(report.completed, customers, "warmup {warmup}");
        }
    }

    #[test]
    fn warmup_shrinks_the_gap_to_the_analytic_time_averages() {
        // The empty-system transient drags the from-t=0 averages low; a
        // warm-up window must not leave the estimate further from the
        // analytic steady state than the cold start does on this seed.
        let (lambda, mu) = (800.0, 1000.0);
        let analytic = MM1Queue::new(lambda, mu).unwrap();
        let gap = |warmup: usize| {
            let report = MM1Simulator::new(lambda, mu, 5)
                .unwrap()
                .with_warmup(warmup)
                .run(40_000)
                .unwrap();
            (report.mean_number_in_system - analytic.mean_number_in_system()).abs()
        };
        assert!(gap(4_000) <= gap(0) + 0.05, "warm-up should not hurt");
    }

    #[test]
    fn overloaded_queue_still_simulates() {
        // λ > µ is allowed for failure injection; delays just grow.
        let sim = MM1Simulator::new(500.0, 200.0, 1).unwrap();
        let report = sim.run(5_000).unwrap();
        assert!(report.utilization > 0.9);
        assert!(report.mean_time_in_system.as_f64() > 1.0 / 200.0);
    }
}
