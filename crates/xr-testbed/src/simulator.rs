//! The discrete-event ground-truth simulator of the XR pipeline.
//!
//! For every frame the simulator walks the same pipeline structure as Fig. 1,
//! but evaluates the *true hardware laws* of [`crate::laws`] instead of the
//! analytical regressions, draws stochastic queueing/wireless/measurement
//! noise, and measures energy through the simulated Monsoon monitor. The
//! output plays the role of the "Ground Truth (GT)" curves in Figs. 4–5.
//!
//! ## The staged frame pipeline
//!
//! A frame flows through explicit stages. Each stage draws from its **own
//! named RNG stream**, seeded as a pure function of
//! `(session_seed, stage_id, frame_index)` via
//! [`xr_types::seed::stage_stream_seed`] (the [`stream`] module names the
//! stage ids). Because no stage's draws depend on how many draws another
//! stage consumed, the stages of different frames can be evaluated in any
//! order — frame-by-frame (the scalar reference implementation) or
//! column-by-column over a whole batch of frames (the structure-of-arrays
//! engine in [`crate::batch`], the default for sessions) — and produce
//! bit-identical [`GroundTruthFrame`]s:
//!
//! 1. **generate** — capture, ISP compute, volumetric data;
//! 2. **sense** — external sensor updates and propagation;
//! 3. **buffer** — M/M/1 input-buffer sojourn sampling;
//! 4. **encode** — frame conversion (local path) / H.264 encoding (edge path);
//! 5. **local inference** — the on-device CNN share;
//! 6. **uplink + edge compute** — wireless transmission and remote
//!    decode/infer over every edge server; with multi-tenant contention
//!    enabled ([`xr_core::ContentionConfig`]), the decode/infer term is a
//!    sojourn drawn from the aggregate M/M/1 queue of
//!    [`xr_queueing::EdgeContention`] on its own [`stream::CONTENTION`]
//!    stream;
//! 7. **handoff** — mobility: in a session, a stateful [`RandomWalker`]
//!    advances one frame window and every coverage-boundary crossing is a
//!    real handoff event; with a multi-site [`xr_core::TopologyConfig`] a
//!    [`TopologyWalker`] roams an [`EdgeTopology`] instead, and each
//!    crossing that lands inside another site's coverage becomes an
//!    edge-to-edge handoff that additionally pays state-migration latency
//!    (eager vs lazy re-offload, drawn on [`stream::MIGRATION`]); for a
//!    standalone frame (no [`SessionState`] walker) the legacy Bernoulli
//!    draw over the analytic `P(HO)` applies;
//! 8. **render + downlink** — result delivery and display rendering;
//! 9. **cooperate** — XR-cooperation exchange;
//! 10. **finalize** — Eq. 1 gating of the end-to-end total and the
//!     Monsoon-style energy measurement.
//!
//! Stages 1–9 append to the frame's private `FrameState`; session-scoped
//! state (the mobility walker, handoff counters) lives in [`SessionState`]
//! and is threaded through [`TestbedSimulator::simulate_session`] frame by
//! frame, which is why [`GroundTruthSession::handoff_rate`] is nonzero for
//! a moving user.

use crate::batch::SimulationEngine;
use crate::laws::{DeviceBias, TrueLaws};
use crate::power::PowerMonitor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, Normal, StandardNormalPairs};
use serde::{Deserialize, Serialize};
use xr_core::Scenario;
use xr_devices::DeviceCatalog;
use xr_queueing::EdgeContention;
use xr_stats::Summary;
use xr_types::seed::stage_stream_seed;
use xr_types::{
    Joules, MigrationPolicy, Ratio, Result, Seconds, Segment, TopologyLayout, Watts, SPEED_OF_LIGHT,
};
use xr_wireless::{
    AccessTechnology, CoverageZone, EdgeTopology, HandoffKind, RandomWalkMobility, RandomWalker,
    TopologyWalker, WirelessLink,
};

/// Stable identifiers of the simulator's named RNG streams.
///
/// Every stochastic draw of the frame pipeline comes from the stream
/// `stage_stream_seed(session_seed, stage_id, frame_index)` of its stage;
/// the ids below are part of the determinism contract (changing one re-keys
/// that stage's noise everywhere) and must never be reused.
pub mod stream {
    /// Stage 1 — frame generation noise.
    pub const GENERATE: u64 = 0;
    /// Stage 2 — external-sensor propagation jitter.
    pub const SENSE: u64 = 1;
    /// Stage 3 — M/M/1 input-buffer sojourn sampling.
    pub const BUFFER: u64 = 2;
    /// Stage 4 — conversion/encoding measurement noise.
    pub const ENCODE: u64 = 3;
    /// Stage 5 — local-inference measurement noise.
    pub const LOCAL_INFERENCE: u64 = 4;
    /// Stage 6 — edge-compute noise and wireless jitter.
    pub const UPLINK_EDGE: u64 = 5;
    /// Stage 7 — handoff fallback draw and handoff-latency noise.
    pub const HANDOFF: u64 = 6;
    /// Stage 8 — rendering measurement noise.
    pub const RENDER: u64 = 7;
    /// Stage 9 — cooperation measurement noise.
    pub const COOPERATE: u64 = 8;
    /// Stage 10 — the Monsoon-style power monitor's sampling noise.
    pub const MONITOR: u64 = 9;
    /// Session-scoped stream of the mobility walker (frame index 0: the
    /// walker lives across frames and owns one stream per session).
    pub const WALKER: u64 = 10;
    /// Stage 6, contended mode — the tagged session's M/M/1 sojourn at each
    /// shared edge server. A separate stream (not [`UPLINK_EDGE`]) so the
    /// wireless jitter draws keep their position when contention toggles.
    pub const CONTENTION: u64 = 11;
    /// Stage 7, topology mode — the state-migration latency noise of an
    /// inter-site handoff. A separate stream (not [`HANDOFF`]) so the legacy
    /// crossing-latency draws keep their position when a topology is
    /// configured, and a 1-site topology stays byte-identical to the
    /// single-zone pipeline (one site can never migrate, so this stream is
    /// then never touched).
    pub const MIGRATION: u64 = 12;
}

/// Ground-truth measurements for one frame.
///
/// Per-segment measurements are stored structure-of-arrays style — one
/// fixed slot per [`Segment`] in [`Segment::ALL`] order
/// ([`Segment::slot`]) — so emitting a frame costs two array copies
/// instead of two heap-allocated map builds (the frame emit path is the
/// hot path of every measurement campaign). Read them through
/// [`GroundTruthFrame::segment_latency`] /
/// [`GroundTruthFrame::segment_energy`] or the
/// [`GroundTruthFrame::latencies`] / [`GroundTruthFrame::energies`]
/// iterators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthFrame {
    /// Measured latency per segment, indexed by [`Segment::slot`].
    pub(crate) latency: [Seconds; Segment::ALL.len()],
    /// Measured end-to-end latency (gated the same way as Eq. 1).
    pub total_latency: Seconds,
    /// Measured energy per segment, indexed by [`Segment::slot`].
    pub(crate) energy: [Joules; Segment::ALL.len()],
    /// Measured total energy (power-monitor integral plus thermal share).
    pub total_energy: Joules,
    /// Whether a handoff occurred during this frame.
    pub handoff_occurred: bool,
}

impl GroundTruthFrame {
    /// Latency of one segment (zero when the segment did not run).
    #[must_use]
    pub fn segment_latency(&self, segment: Segment) -> Seconds {
        self.latency[segment.slot()]
    }

    /// Energy of one segment.
    #[must_use]
    pub fn segment_energy(&self, segment: Segment) -> Joules {
        self.energy[segment.slot()]
    }

    /// Per-segment latencies in [`Segment::ALL`] (= `Ord`) order.
    pub fn latencies(&self) -> impl Iterator<Item = (Segment, Seconds)> + '_ {
        Segment::ALL.iter().map(|&s| (s, self.latency[s.slot()]))
    }

    /// Per-segment energies in [`Segment::ALL`] (= `Ord`) order.
    pub fn energies(&self) -> impl Iterator<Item = (Segment, Joules)> + '_ {
        Segment::ALL.iter().map(|&s| (s, self.energy[s.slot()]))
    }
}

/// Ground-truth measurements for a whole session (many frames).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthSession {
    pub(crate) frames: Vec<GroundTruthFrame>,
    /// Total inter-site state-migration latency paid over the session
    /// (zero without a multi-edge topology).
    pub(crate) migration_time: Seconds,
    /// Number of distinct edge sites the session attached to (1 without a
    /// multi-edge topology, or when it never left its start site).
    pub(crate) sites_visited: u32,
}

impl GroundTruthSession {
    /// The per-frame measurements.
    #[must_use]
    pub fn frames(&self) -> &[GroundTruthFrame] {
        &self.frames
    }

    /// Mean end-to-end latency over the session.
    #[must_use]
    pub fn mean_latency(&self) -> Seconds {
        if self.frames.is_empty() {
            return Seconds::ZERO;
        }
        Seconds::new(
            self.frames
                .iter()
                .map(|f| f.total_latency.as_f64())
                .sum::<f64>()
                / self.frames.len() as f64,
        )
    }

    /// Mean per-frame energy over the session.
    #[must_use]
    pub fn mean_energy(&self) -> Joules {
        if self.frames.is_empty() {
            return Joules::ZERO;
        }
        Joules::new(
            self.frames
                .iter()
                .map(|f| f.total_energy.as_f64())
                .sum::<f64>()
                / self.frames.len() as f64,
        )
    }

    /// Mean latency of one segment over the session.
    #[must_use]
    pub fn mean_segment_latency(&self, segment: Segment) -> Seconds {
        if self.frames.is_empty() {
            return Seconds::ZERO;
        }
        Seconds::new(
            self.frames
                .iter()
                .map(|f| f.segment_latency(segment).as_f64())
                .sum::<f64>()
                / self.frames.len() as f64,
        )
    }

    /// Summary statistics of the per-frame total latency (in milliseconds).
    #[must_use]
    pub fn latency_summary(&self) -> Summary {
        Summary::of(
            &self
                .frames
                .iter()
                .map(|f| f.total_latency.as_f64() * 1e3)
                .collect::<Vec<_>>(),
        )
    }

    /// Summary statistics of the per-frame energy (in millijoules).
    #[must_use]
    pub fn energy_summary(&self) -> Summary {
        Summary::of(
            &self
                .frames
                .iter()
                .map(|f| f.total_energy.as_f64() * 1e3)
                .collect::<Vec<_>>(),
        )
    }

    /// Fraction of frames that experienced a handoff.
    #[must_use]
    pub fn handoff_rate(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().filter(|f| f.handoff_occurred).count() as f64 / self.frames.len() as f64
    }

    /// Total inter-site state-migration latency paid over the session. Zero
    /// unless the scenario roams a multi-edge topology and actually changed
    /// sites.
    #[must_use]
    pub fn migration_time(&self) -> Seconds {
        self.migration_time
    }

    /// Mean per-frame state-migration latency (total migration time over
    /// the frame count).
    #[must_use]
    pub fn mean_migration_latency(&self) -> Seconds {
        if self.frames.is_empty() {
            return Seconds::ZERO;
        }
        Seconds::new(self.migration_time.as_f64() / self.frames.len() as f64)
    }

    /// Number of distinct edge sites the session attached to, including the
    /// start site (1 without a multi-edge topology).
    #[must_use]
    pub fn sites_visited(&self) -> u32 {
        self.sites_visited
    }
}

/// The testbed simulator.
#[derive(Debug, Clone)]
pub struct TestbedSimulator {
    pub(crate) laws: TrueLaws,
    pub(crate) monitor: PowerMonitor,
    pub(crate) seed: u64,
    /// True radio power levels (transmit, receive, idle-wait) — close to, but
    /// not identical with, the analytical model's defaults.
    pub(crate) radio_tx: Watts,
    pub(crate) radio_rx: Watts,
    pub(crate) radio_idle: Watts,
    pub(crate) base_power: Watts,
    pub(crate) thermal_fraction: f64,
    /// Relative standard deviation of per-segment measurement noise.
    pub(crate) noise_sigma: f64,
    /// Which engine [`TestbedSimulator::simulate_session`] dispatches to.
    engine: SimulationEngine,
    /// How many contiguous frame ranges
    /// [`TestbedSimulator::simulate_session`] splits a session into
    /// (evaluated on scoped threads, stitched bit-identically); 1 keeps the
    /// single-range path.
    session_chunks: usize,
}

impl TestbedSimulator {
    /// Creates a simulator with the standard true laws and the Monsoon
    /// monitor.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            laws: TrueLaws::standard(),
            monitor: PowerMonitor::monsoon(),
            seed,
            radio_tx: Watts::new(1.3),
            radio_rx: Watts::new(0.95),
            radio_idle: Watts::new(0.38),
            base_power: Watts::new(0.85),
            thermal_fraction: 0.045,
            noise_sigma: 0.04,
            engine: SimulationEngine::default(),
            session_chunks: 1,
        }
    }

    /// Overrides the session-simulation engine (sessions default to the
    /// batched structure-of-arrays engine; [`SimulationEngine::Scalar`] is
    /// the frame-by-frame reference both must match bit for bit).
    #[must_use]
    pub fn with_engine(mut self, engine: SimulationEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The session-simulation engine in effect.
    #[must_use]
    pub fn engine(&self) -> SimulationEngine {
        self.engine
    }

    /// Makes [`TestbedSimulator::simulate_session`] split every session
    /// into `chunks` contiguous frame ranges evaluated on scoped threads
    /// via [`TestbedSimulator::simulate_session_split`] (clamped to at
    /// least 1; 1 keeps the single-range path). Results are bit-identical
    /// for every chunk count — this is a pure wall-clock knob for huge
    /// `frames_per_session` campaigns.
    #[must_use]
    pub fn with_session_chunks(mut self, chunks: usize) -> Self {
        self.session_chunks = chunks.max(1);
        self
    }

    /// The within-session split width in effect (1 = unsplit).
    #[must_use]
    pub fn session_chunks(&self) -> usize {
        self.session_chunks
    }

    /// Overrides the true laws (used by failure-injection tests).
    #[must_use]
    pub fn with_laws(mut self, laws: TrueLaws) -> Self {
        self.laws = laws;
        self
    }

    /// Overrides the measurement-noise level.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    #[must_use]
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        self.noise_sigma = sigma;
        self
    }

    /// A copy of this simulator with a different seed but identical laws,
    /// monitor and noise configuration — one per replication of a campaign
    /// operating point.
    #[must_use]
    pub fn reseeded(&self, seed: u64) -> Self {
        let mut simulator = self.clone();
        simulator.seed = seed;
        simulator
    }

    /// The simulator's base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The true laws in effect.
    #[must_use]
    pub fn laws(&self) -> &TrueLaws {
        &self.laws
    }

    /// One multiplicative measurement-noise factor `exp(N(0, σ))`, drawn
    /// through the stage's [`StandardNormalPairs`] cache: odd draws on a
    /// stream consume one raw word pair (the cosine Box–Muller half), even
    /// draws consume nothing (the cached sine half). Stages that draw two
    /// factors from one stream therefore pay **one** `ln`/`sqrt`/`sincos`
    /// set for both — the PR-8 sanctioned re-key. Noiseless simulators
    /// draw nothing, as before.
    pub(crate) fn noise(&self, rng: &mut StdRng, pairs: &mut StandardNormalPairs) -> f64 {
        if self.noise_sigma <= 0.0 {
            return 1.0;
        }
        let normal = Normal::new(0.0, self.noise_sigma).expect("valid sigma");
        rand_distr::math::exp(normal.from_standard(pairs.next(rng)))
    }

    /// The RNG for one named stage stream of one frame: a pure function of
    /// `(session_seed, stage_id, frame_index)`, shared by the scalar and
    /// batched pipelines so both draw identical noise.
    pub(crate) fn stage_rng(&self, stage: u64, frame_index: u64) -> StdRng {
        StdRng::seed_from_u64(stage_stream_seed(self.seed, stage, frame_index))
    }

    pub(crate) fn ms(pixels_equiv: f64, resource: f64) -> Seconds {
        Seconds::from_millis(pixels_equiv / resource.max(f64::MIN_POSITIVE))
    }

    pub(crate) fn edge_resource(
        &self,
        scenario: &Scenario,
        index: usize,
        client_resource: f64,
    ) -> f64 {
        let Some(server) = scenario.edge_servers.get(index) else {
            return client_resource * self.laws.edge_speedup;
        };
        if let Some(explicit) = server.compute_resource {
            return explicit;
        }
        let catalog = DeviceCatalog::table1();
        if let Ok(spec) = catalog.device(&server.name) {
            // Edge inference is GPU-dominated.
            self.laws.compute_resource(
                spec.cpu_clock,
                spec.gpu_clock,
                Ratio::new(0.15),
                DeviceBias::for_device(&server.name),
            )
        } else {
            client_resource * self.laws.edge_speedup
        }
    }

    /// The deterministic per-frame service time of edge server `index` at
    /// this operating point: remote CNN inference + memory transfer + H.264
    /// decode — exactly the noise-free factor of the uncontended edge stage,
    /// and the `1/µ` the multi-tenant contention queue is built on.
    pub(crate) fn edge_service_time(
        &self,
        scenario: &Scenario,
        index: usize,
        client_resource: f64,
        encode_work: f64,
    ) -> Seconds {
        let server = &scenario.edge_servers[index];
        let c_edge = self.edge_resource(scenario, index, client_resource);
        let remote_complexity = self.laws.cnn_complexity(&scenario.remote_cnn);
        let decode = Self::ms(encode_work * self.laws.decode_discount(), c_edge);
        Self::ms(
            scenario.frame.encoded_size.as_f64() * remote_complexity,
            c_edge,
        ) + scenario.frame.encoded_data / server.memory_bandwidth
            + decode
    }

    /// Resolves the scenario's multi-tenant contention into one aggregate
    /// M/M/1 queue per edge server: arrival rate `users_per_edge × frame
    /// rate`, service rate the reciprocal of the noise-free edge service
    /// time (remote inference + memory transfer + decode).
    ///
    /// Returns `Ok(None)` when the scenario has no contention configured or
    /// never touches an edge server (local execution, no servers) — the
    /// pipeline then keeps the paper's private-edge behaviour bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`xr_types::Error::UnstableQueue`] when the offered load of
    /// the population saturates an edge server (`ρ ≥ 1`).
    pub fn contention_snapshot(&self, scenario: &Scenario) -> Result<Option<ContentionSnapshot>> {
        let Some(config) = scenario.contention else {
            return Ok(None);
        };
        if !scenario.execution.uses_edge() || scenario.edge_servers.is_empty() {
            return Ok(None);
        }
        let client = &scenario.client;
        let bias = DeviceBias::for_device(&client.name);
        let c_true =
            self.laws
                .compute_resource(client.cpu_clock, client.gpu_clock, client.cpu_share, bias);
        let encode_work = self
            .laws
            .encoding_work(&scenario.encoding, &scenario.frame, bias);
        let total_share: f64 = scenario.edge_servers.iter().map(|srv| srv.task_share).sum();
        let edge_share = scenario.execution.edge_share();
        let per_session_rate = scenario.frame.frame_rate.as_f64();
        let mut servers = Vec::with_capacity(scenario.edge_servers.len());
        for (i, server) in scenario.edge_servers.iter().enumerate() {
            let weight = if total_share > 0.0 {
                server.task_share / total_share * edge_share
            } else {
                0.0
            };
            let service = self.edge_service_time(scenario, i, c_true, encode_work);
            let contention = EdgeContention::new(config.users_per_edge, per_session_rate, service)?;
            servers.push((weight, contention));
        }
        // With a multi-edge topology the aggregate queues above are only the
        // map-wide baseline: each *site* hosts its own tenant population, so
        // resolve one queue set per site by repopulating the per-server
        // queues (same server, same per-session rate, the site's tenants).
        let sites = match Self::edge_topology(scenario) {
            Some(map) => map
                .sites()
                .iter()
                .map(|site| {
                    servers
                        .iter()
                        .map(|(weight, contention)| {
                            Ok((*weight, contention.with_users(site.tenants())?))
                        })
                        .collect::<Result<Vec<_>>>()
                        .map(|queues| (site.tenants(), queues))
                })
                .collect::<Result<Vec<_>>>()?,
            None => Vec::new(),
        };
        Ok(Some(ContentionSnapshot {
            users: config.users_per_edge,
            servers,
            sites,
        }))
    }

    /// The per-frame sampling plan of the contended edge stage, shared by
    /// the scalar and batched engines so the two cannot drift: per server,
    /// the tagged session's task-share weight and the exponential sojourn
    /// distribution with rate `µ − λ`.
    ///
    /// # Errors
    ///
    /// Propagates [`TestbedSimulator::contention_snapshot`] errors.
    pub(crate) fn contention_plan(&self, scenario: &Scenario) -> Result<Option<ContentionPlan>> {
        let Some(snapshot) = self.contention_snapshot(scenario)? else {
            return Ok(None);
        };
        let pairs = snapshot
            .servers
            .iter()
            .map(|(weight, contention)| {
                (
                    *weight,
                    Exp::new(contention.sojourn_rate()).expect("stable queue has a positive rate"),
                )
            })
            .collect();
        Ok(Some(ContentionPlan { pairs }))
    }

    /// The per-*site* sampling plans of the contended edge stage when the
    /// session roams a multi-edge topology: `plans[site]` is the
    /// [`ContentionPlan`] of the queue population resident at that site, so
    /// the tagged session's utilisation ρ genuinely changes as it migrates.
    /// Shared by the scalar reference (indexed per frame with the frame's
    /// serving site) and the batched engine (hoisted once per session).
    ///
    /// Returns `Ok(None)` when the scenario has no topology, no contention,
    /// or never touches an edge server.
    ///
    /// # Errors
    ///
    /// Returns [`xr_types::Error::UnstableQueue`] when any *site's* tenant
    /// population saturates an edge server.
    pub(crate) fn site_contention_plans(
        &self,
        scenario: &Scenario,
    ) -> Result<Option<Vec<ContentionPlan>>> {
        let Some(snapshot) = self.contention_snapshot(scenario)? else {
            return Ok(None);
        };
        if snapshot.sites.is_empty() {
            return Ok(None);
        }
        Ok(Some(
            snapshot
                .sites
                .iter()
                .map(|(_, queues)| ContentionPlan {
                    pairs: queues
                        .iter()
                        .map(|(weight, contention)| {
                            (
                                *weight,
                                Exp::new(contention.sojourn_rate())
                                    .expect("stable queue has a positive rate"),
                            )
                        })
                        .collect(),
                })
                .collect(),
        ))
    }

    /// The multi-edge site map of a scenario, or `None` when it keeps the
    /// paper's single-coverage-zone mobility model.
    ///
    /// The mapping: every site runs the scenario's first edge link budget
    /// (falling back to 5 GHz Wi-Fi without edge servers) and hosts a tenant
    /// population cycled around `contention.users_per_edge` (1 when
    /// uncontended). [`TopologyLayout::Single`] reuses the mobility
    /// coverage radius — the bit-identity pin against the legacy walker —
    /// while the tiled layouts derive their per-site radii from
    /// `site_density` and ignore it.
    ///
    /// # Panics
    ///
    /// Panics when a tiled layout carries a non-positive site density —
    /// unreachable for scenarios that passed [`Scenario::validate`].
    #[must_use]
    pub fn edge_topology(scenario: &Scenario) -> Option<EdgeTopology> {
        let config = scenario.topology?;
        let technology = scenario
            .edge_servers
            .first()
            .map_or(AccessTechnology::WiFi5GHz, |server| server.technology);
        let tenants = scenario.contention.map_or(1, |c| c.users_per_edge);
        Some(match config.layout {
            TopologyLayout::Single => EdgeTopology::single(
                CoverageZone::new(scenario.mobility.coverage_radius),
                technology,
                tenants,
            ),
            layout => EdgeTopology::tiled(layout, config.site_density, technology, tenants)
                .expect("scenario validation rejects non-positive site densities"),
        })
    }

    /// The deterministic base latency of one inter-site state migration:
    /// eager re-offload pushes the full session state (decoder context, CNN
    /// activations, render surfaces) inline with the handoff; lazy
    /// re-offload only redirects the uplink and defers the state fetches.
    pub(crate) fn migration_base(policy: MigrationPolicy) -> Seconds {
        match policy {
            MigrationPolicy::Eager => Seconds::new(0.25),
            MigrationPolicy::Lazy => Seconds::new(0.06),
        }
    }

    /// Whether `segment` runs on the compute rail (CPU/GPU work that feeds
    /// the thermal share) as opposed to a radio rail — the classification
    /// shared by the scalar finalizer and the batched engine's precomputed
    /// per-segment tables, so the two can never drift apart.
    pub(crate) fn segment_is_compute(segment: Segment) -> bool {
        matches!(
            segment,
            Segment::FrameGeneration
                | Segment::VolumetricDataGeneration
                | Segment::FrameConversion
                | Segment::FrameEncoding
                | Segment::LocalInference
                | Segment::FrameRendering
        )
    }

    /// The power level drawn while `segment` runs: the device's mean
    /// compute power for compute segments, otherwise the matching radio
    /// rail. Shared by both engines like
    /// [`TestbedSimulator::segment_is_compute`].
    pub(crate) fn segment_power(&self, segment: Segment, compute_power: Watts) -> Watts {
        if Self::segment_is_compute(segment) {
            return compute_power;
        }
        match segment {
            Segment::ExternalSensorInformation => self.radio_rx,
            Segment::Transmission | Segment::XrCooperation | Segment::Handoff => self.radio_tx,
            _ => self.radio_idle, // RemoteInference: the device waits.
        }
    }

    /// Whether `segment` contributes to this scenario's end-to-end totals
    /// (the Eq. 1 gating shared by the latency and energy finalizers).
    pub(crate) fn segment_included(
        scenario: &Scenario,
        segment: Segment,
        uses_local: bool,
        uses_edge: bool,
    ) -> bool {
        scenario.segments.contains(segment)
            && match segment {
                Segment::FrameConversion | Segment::LocalInference => uses_local,
                Segment::FrameEncoding
                | Segment::RemoteInference
                | Segment::Transmission
                | Segment::Handoff => uses_edge,
                Segment::XrCooperation => scenario.cooperation.include_in_totals,
                _ => true,
            }
    }

    /// Simulates one standalone frame and returns the ground-truth
    /// measurements. Without session state the handoff stage falls back to a
    /// Bernoulli draw over the analytic `P(HO)`; sessions instead thread a
    /// stateful walker via [`TestbedSimulator::simulate_session`] /
    /// [`TestbedSimulator::simulate_frame_in_session`].
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors.
    pub fn simulate_frame(
        &self,
        scenario: &Scenario,
        frame_index: u64,
    ) -> Result<GroundTruthFrame> {
        let mut session = SessionState::standalone();
        self.simulate_frame_in_session(scenario, frame_index, &mut session)
    }

    /// Simulates one frame as part of an ongoing session, advancing the
    /// session's mobility walker by one frame window.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors.
    pub fn simulate_frame_in_session(
        &self,
        scenario: &Scenario,
        frame_index: u64,
        session: &mut SessionState,
    ) -> Result<GroundTruthFrame> {
        scenario.validate()?;
        // With a topology the contended queue population is the *serving
        // site's*, read before the handoff stage advances the walker — so
        // the uplink of frame `f` is priced at the site where the window
        // opened, exactly like the batched engine's recorded pre-advance
        // site.
        let contention = match scenario.topology {
            Some(_) => self
                .site_contention_plans(scenario)?
                .map(|mut plans| plans.swap_remove(session.site)),
            None => self.contention_plan(scenario)?,
        };
        let mut state = FrameState::new(self, scenario, frame_index);
        self.stage_generate(&mut state);
        self.stage_sense(&mut state);
        self.stage_buffer(&mut state);
        self.stage_encode(&mut state);
        self.stage_local_inference(&mut state);
        self.stage_uplink_and_edge(&mut state, contention.as_ref());
        self.stage_handoff(&mut state, session);
        self.stage_render(&mut state);
        self.stage_cooperate(&mut state);
        Ok(self.finalize(state, frame_index))
    }

    /// Stage 1 — frame generation (capture interval + ISP compute + memory
    /// writes) and volumetric data generation. The two noise factors are
    /// the two halves of one Box–Muller pair (one word pair per frame).
    fn stage_generate(&self, s: &mut FrameState<'_>) {
        let mut rng = self.stage_rng(stream::GENERATE, s.frame_index);
        let mut pairs = StandardNormalPairs::new();
        let frame = &s.scenario.frame;
        let generation = (frame.frame_rate.period()
            + Self::ms(frame.raw_size.as_f64(), s.c_true)
            + frame.raw_data / s.memory)
            * self.noise(&mut rng, &mut pairs);
        s.latency[Segment::FrameGeneration.slot()] = generation;
        let volumetric = (Self::ms(frame.scene_size.as_f64(), s.c_true)
            + frame.volumetric_data / s.memory)
            * self.noise(&mut rng, &mut pairs);
        s.latency[Segment::VolumetricDataGeneration.slot()] = volumetric;
    }

    /// Stage 2 — external sensor information: per-update generation +
    /// propagation with jitter; slowest sensor dominates.
    fn stage_sense(&self, s: &mut FrameState<'_>) {
        let mut rng = self.stage_rng(stream::SENSE, s.frame_index);
        let mut ext = Seconds::ZERO;
        for sensor in &s.scenario.sensors {
            let mut sensor_total = Seconds::ZERO;
            for _ in 0..s.scenario.updates_per_frame {
                let jitter = 1.0 + rng.gen_range(-0.05..0.05);
                sensor_total += sensor.generation_frequency.period() * jitter
                    + sensor.distance / SPEED_OF_LIGHT;
            }
            ext = ext.max(sensor_total);
        }
        s.latency[Segment::ExternalSensorInformation.slot()] = ext;
    }

    /// Stage 3 — input-buffer waiting: each flow's sojourn time is
    /// exponentially distributed with rate (µ − λ) in a stable M/M/1 queue.
    /// The sampled sojourn is consumed by the render stage.
    fn stage_buffer(&self, s: &mut FrameState<'_>) {
        let mut rng = self.stage_rng(stream::BUFFER, s.frame_index);
        let mu = s.scenario.buffer.service_rate;
        let frame_rate = s.scenario.frame.frame_rate.as_f64();
        for lambda in [
            s.scenario.buffer.frame_arrival_rate.unwrap_or(frame_rate),
            s.scenario
                .buffer
                .volumetric_arrival_rate
                .unwrap_or(frame_rate),
            s.scenario.external_arrival_rate(),
        ] {
            if lambda <= 0.0 || lambda >= mu {
                continue;
            }
            let exp = Exp::new(mu - lambda).expect("positive rate");
            s.buffering += Seconds::new(exp.sample(&mut rng));
        }
    }

    /// Stage 4 — frame conversion (local path) and H.264 encoding (edge
    /// path), using the true encoder law.
    fn stage_encode(&self, s: &mut FrameState<'_>) {
        let mut rng = self.stage_rng(stream::ENCODE, s.frame_index);
        // One pair cache across both paths: a split scenario's conversion
        // and encoding factors are the two halves of one word pair.
        let mut pairs = StandardNormalPairs::new();
        let frame = &s.scenario.frame;
        let conversion = if s.uses_local {
            (Self::ms(frame.raw_size.as_f64(), s.c_true) + frame.raw_data / s.memory)
                * self.noise(&mut rng, &mut pairs)
        } else {
            Seconds::ZERO
        };
        s.latency[Segment::FrameConversion.slot()] = conversion;
        s.encode_work = self.laws.encoding_work(&s.scenario.encoding, frame, s.bias);
        let encoding = if s.uses_edge {
            (Self::ms(s.encode_work, s.c_true) + frame.raw_data / s.memory)
                * self.noise(&mut rng, &mut pairs)
        } else {
            Seconds::ZERO
        };
        s.latency[Segment::FrameEncoding.slot()] = encoding;
    }

    /// Stage 5 — the on-device CNN share.
    fn stage_local_inference(&self, s: &mut FrameState<'_>) {
        let mut rng = self.stage_rng(stream::LOCAL_INFERENCE, s.frame_index);
        let mut pairs = StandardNormalPairs::new();
        let frame = &s.scenario.frame;
        let local_complexity = self.laws.cnn_complexity(&s.scenario.local_cnn);
        let local = if s.uses_local && s.client_share > 0.0 {
            (Self::ms(frame.converted_size.as_f64() * local_complexity, s.c_true)
                + frame.converted_data / s.memory)
                * s.client_share
                * self.noise(&mut rng, &mut pairs)
        } else {
            Seconds::ZERO
        };
        s.latency[Segment::LocalInference.slot()] = local;
    }

    /// Stage 6 — uplink transmission and remote inference: weighted-slowest
    /// edge server (decode + infer) and slowest uplink.
    ///
    /// With a [`ContentionPlan`] the decode/infer term becomes a sojourn
    /// (waiting + service) drawn from the shared queue's dedicated
    /// [`stream::CONTENTION`] stream — with **no** measurement-noise factor,
    /// so the empirical mean stays pinned to the M/M/1 closed form the
    /// property tests check — while the uplink keeps its jitter draw from
    /// the [`stream::UPLINK_EDGE`] stream.
    fn stage_uplink_and_edge(&self, s: &mut FrameState<'_>, contention: Option<&ContentionPlan>) {
        let mut rng = self.stage_rng(stream::UPLINK_EDGE, s.frame_index);
        // One pair cache across the server loop: even-indexed servers draw
        // a fresh word pair, odd-indexed servers reuse the cached sine half
        // (the interleaved jitter words leave the cache untouched).
        let mut pairs = StandardNormalPairs::new();
        let scenario = s.scenario;
        let frame = &scenario.frame;
        let mut remote = Seconds::ZERO;
        let mut transmission = Seconds::ZERO;
        if s.uses_edge && !scenario.edge_servers.is_empty() {
            if let Some(plan) = contention {
                let mut contention_rng = self.stage_rng(stream::CONTENTION, s.frame_index);
                for (&(weight, sojourn), server) in plan.pairs.iter().zip(&scenario.edge_servers) {
                    let drawn = Seconds::new(sojourn.sample(&mut contention_rng));
                    remote = remote.max(drawn * weight);

                    let link = WirelessLink::new(server.technology, server.distance);
                    let link = match server.throughput {
                        Some(t) => link.with_throughput(t),
                        None => link,
                    };
                    let wireless_jitter = 1.0 + rng.gen_range(0.0..0.12);
                    let tx = link.transmission_latency(frame.encoded_data) * wireless_jitter;
                    transmission = transmission.max(tx);
                }
            } else {
                let remote_complexity = self.laws.cnn_complexity(&scenario.remote_cnn);
                let total_share: f64 = scenario.edge_servers.iter().map(|srv| srv.task_share).sum();
                for (i, server) in scenario.edge_servers.iter().enumerate() {
                    let c_edge = self.edge_resource(scenario, i, s.c_true);
                    let weight = if total_share > 0.0 {
                        server.task_share / total_share * s.edge_share
                    } else {
                        0.0
                    };
                    let decode = Self::ms(s.encode_work * self.laws.decode_discount(), c_edge);
                    let infer = Self::ms(frame.encoded_size.as_f64() * remote_complexity, c_edge)
                        + frame.encoded_data / server.memory_bandwidth
                        + decode;
                    remote = remote.max(infer * weight * self.noise(&mut rng, &mut pairs));

                    let link = WirelessLink::new(server.technology, server.distance);
                    let link = match server.throughput {
                        Some(t) => link.with_throughput(t),
                        None => link,
                    };
                    let wireless_jitter = 1.0 + rng.gen_range(0.0..0.12);
                    let tx = link.transmission_latency(frame.encoded_data) * wireless_jitter;
                    transmission = transmission.max(tx);
                }
            }
        }
        s.latency[Segment::RemoteInference.slot()] = remote;
        s.latency[Segment::Transmission.slot()] = transmission;
    }

    /// Stage 7 — mobility and handoff. With session state, the stateful
    /// walker advances one frame window and any coverage-boundary crossing
    /// is a handoff; on a multi-edge topology a crossing that re-attaches
    /// to a neighbouring site additionally pays the **state-migration**
    /// latency of the configured re-offload policy, drawn from the
    /// dedicated [`stream::MIGRATION`] stream (so the crossing noise keeps
    /// its [`stream::HANDOFF`] position and a 1-site topology replays the
    /// single-zone pipeline bit for bit). For a standalone frame, a
    /// Bernoulli draw over the analytic per-window `P(HO)` stands in.
    fn stage_handoff(&self, s: &mut FrameState<'_>, session: &mut SessionState) {
        let mut rng = self.stage_rng(stream::HANDOFF, s.frame_index);
        let mut pairs = StandardNormalPairs::new();
        let scenario = s.scenario;
        let handoff_latency = if s.uses_edge && scenario.mobility.speed.as_f64() > 0.0 {
            if let Some(topo) = session.topo.as_mut() {
                let events = topo.advance(scenario.frame_window());
                session.site = topo.site_index();
                let mut latency = Seconds::ZERO;
                if events.crossings > 0 {
                    s.handoff_occurred = true;
                    session.handoffs += events.crossings as u64;
                    let base = match scenario.mobility.handoff_kind {
                        HandoffKind::Horizontal => Seconds::new(0.065),
                        HandoffKind::Vertical => Seconds::new(1.2),
                    };
                    latency += base * events.crossings as f64 * self.noise(&mut rng, &mut pairs);
                }
                if events.migrations > 0 {
                    session.migrations += events.migrations as u64;
                    let policy = scenario
                        .topology
                        .map_or(MigrationPolicy::Eager, |t| t.migration_policy);
                    let mut migration_rng = self.stage_rng(stream::MIGRATION, s.frame_index);
                    let mut migration_pairs = StandardNormalPairs::new();
                    let migration = Self::migration_base(policy)
                        * events.migrations as f64
                        * self.noise(&mut migration_rng, &mut migration_pairs);
                    session.migration_time += migration;
                    latency += migration;
                }
                latency
            } else {
                let crossings = match session.walker.as_mut() {
                    Some(walker) => walker.advance(scenario.frame_window()),
                    None => {
                        let mobility = RandomWalkMobility::new(
                            scenario.mobility.speed,
                            Seconds::new(0.1),
                            CoverageZone::new(scenario.mobility.coverage_radius),
                        );
                        let p = mobility.handoff_probability(scenario.frame_window());
                        usize::from(rng.gen_bool(p.clamp(0.0, 1.0)))
                    }
                };
                if crossings > 0 {
                    // A sub-10-fps frame window spans several walk steps, so
                    // one frame can cross more than once; each crossing pays
                    // the handoff latency.
                    s.handoff_occurred = true;
                    session.handoffs += crossings as u64;
                    let base = match scenario.mobility.handoff_kind {
                        HandoffKind::Horizontal => Seconds::new(0.065),
                        HandoffKind::Vertical => Seconds::new(1.2),
                    };
                    base * crossings as f64 * self.noise(&mut rng, &mut pairs)
                } else {
                    Seconds::ZERO
                }
            }
        } else {
            Seconds::ZERO
        };
        s.latency[Segment::Handoff.slot()] = handoff_latency;
    }

    /// Stage 8 — rendering and downlink: compute + memory + buffered input +
    /// result delivery over the first edge link (or local memory).
    fn stage_render(&self, s: &mut FrameState<'_>) {
        let mut rng = self.stage_rng(stream::RENDER, s.frame_index);
        let mut pairs = StandardNormalPairs::new();
        let scenario = s.scenario;
        let frame = &scenario.frame;
        let result_payload = xr_types::MegaBytes::new(0.01);
        let result_delivery = if s.uses_edge && !scenario.edge_servers.is_empty() {
            let server = &scenario.edge_servers[0];
            let link = WirelessLink::new(server.technology, server.distance);
            let link = match server.throughput {
                Some(t) => link.with_throughput(t),
                None => link,
            };
            link.transmission_latency(result_payload)
        } else {
            result_payload / s.memory
        };
        let rendering = (Self::ms(frame.raw_size.as_f64(), s.c_true) + frame.raw_data / s.memory)
            * self.noise(&mut rng, &mut pairs)
            + s.buffering
            + result_delivery;
        s.latency[Segment::FrameRendering.slot()] = rendering;
    }

    /// Stage 9 — XR cooperation exchange.
    fn stage_cooperate(&self, s: &mut FrameState<'_>) {
        let mut rng = self.stage_rng(stream::COOPERATE, s.frame_index);
        let mut pairs = StandardNormalPairs::new();
        let cooperation = &s.scenario.cooperation;
        let coop = (cooperation.payload / cooperation.throughput
            + cooperation.distance / SPEED_OF_LIGHT)
            * self.noise(&mut rng, &mut pairs);
        s.latency[Segment::XrCooperation.slot()] = coop;
    }

    /// Stage 10 — Eq. 1 gating of the end-to-end total and the Monsoon-style
    /// energy measurement over the per-segment durations (integrated in the
    /// closed form of [`PowerMonitor::measure_energy`], which reproduces the
    /// sampled trace's energy distribution exactly).
    fn finalize(&self, s: FrameState<'_>, frame_index: u64) -> GroundTruthFrame {
        let scenario = s.scenario;
        // Every stage wrote its slot, so walking `Segment::ALL` here visits
        // exactly the (segment, value) pairs the old per-frame BTreeMap
        // iterated, in the same ascending order — the floating-point sums
        // below accumulate identically.
        let mut total_latency = Seconds::ZERO;
        for (slot, &segment) in Segment::ALL.iter().enumerate() {
            if Self::segment_included(scenario, segment, s.uses_local, s.uses_edge) {
                total_latency += s.latency[slot];
            }
        }

        let client = &scenario.client;
        let compute_power =
            self.laws
                .mean_power(client.cpu_clock, client.gpu_clock, client.cpu_share, s.bias);
        let mut energy = [Joules::ZERO; Segment::ALL.len()];
        let mut phases: Vec<(Watts, Seconds)> = Vec::new();
        let mut compute_energy = Joules::ZERO;
        for (slot, &segment) in Segment::ALL.iter().enumerate() {
            let duration = s.latency[slot];
            let included = Self::segment_included(scenario, segment, s.uses_local, s.uses_edge);
            let power = self.segment_power(segment, compute_power);
            let seg_energy = power * duration;
            energy[slot] = seg_energy;
            if included {
                phases.push((power, duration));
                if Self::segment_is_compute(segment) {
                    compute_energy += seg_energy;
                }
            }
        }
        let trace_energy = self.monitor.measure_energy(
            &phases,
            self.base_power,
            stage_stream_seed(self.seed, stream::MONITOR, frame_index),
        );
        let thermal = compute_energy * self.thermal_fraction;
        let total_energy = trace_energy + thermal;

        GroundTruthFrame {
            latency: s.latency,
            total_latency,
            energy,
            total_energy,
            handoff_occurred: s.handoff_occurred,
        }
    }

    /// Simulates a session of `frames` frames, threading a fresh
    /// [`SessionState`] through the staged pipeline so device mobility (and
    /// therefore [`GroundTruthSession::handoff_rate`]) evolves across frames.
    ///
    /// Dispatches to the configured [`SimulationEngine`] — by default the
    /// batched structure-of-arrays engine, which is bit-identical to (and
    /// considerably faster than) the scalar frame-by-frame reference.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors; `frames` must be at least 1.
    pub fn simulate_session(&self, scenario: &Scenario, frames: u64) -> Result<GroundTruthSession> {
        if self.session_chunks > 1 {
            return self.simulate_session_split(scenario, frames, self.session_chunks);
        }
        match self.engine {
            SimulationEngine::Scalar => self.simulate_session_scalar(scenario, frames),
            SimulationEngine::Batched { width } | SimulationEngine::FusedPoint { width } => {
                self.simulate_session_batched(scenario, frames, width)
            }
        }
    }

    /// The scalar reference implementation of
    /// [`TestbedSimulator::simulate_session`]: one frame at a time through
    /// the staged pipeline. The batched engine must reproduce this stream of
    /// [`GroundTruthFrame`]s bit for bit (pinned by property tests and a CI
    /// artifact diff).
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors; `frames` must be at least 1.
    pub fn simulate_session_scalar(
        &self,
        scenario: &Scenario,
        frames: u64,
    ) -> Result<GroundTruthSession> {
        if frames == 0 {
            return Err(xr_types::Error::invalid_parameter(
                "frames",
                "must be at least 1",
            ));
        }
        self.simulate_session_range_scalar(scenario, 0..frames)
    }

    /// Simulates a contiguous slice of a session through whichever engine is
    /// configured: the half-open range `frames` names 0-based frame
    /// *offsets*, so `a..b` simulates the 1-based frame indices
    /// `a + 1 ..= b` of the session that
    /// [`TestbedSimulator::simulate_session`] would run in full.
    ///
    /// Every per-frame draw comes from the frame's own per-stage RNG stream,
    /// so the range's measured frames are bit-identical to the same frames
    /// of a whole-session run. The only cross-frame state — the mobility
    /// walker and the session tallies — is *fast-forwarded* through the
    /// skipped prefix by replaying exactly the walker advances and
    /// [`stream::MIGRATION`] draws a full run would have made, so the
    /// returned session's `migration_time`, `sites_visited` and the serving
    /// site of every range frame also match bit for bit.
    ///
    /// The returned [`GroundTruthSession`] holds the range's frames only;
    /// its `migration_time` and `sites_visited` tallies are **cumulative
    /// through the end of the range** (frames `1..=b`). Concatenating the
    /// frames of consecutive ranges and keeping the *last* range's tallies
    /// therefore reconstructs the whole-session result exactly —
    /// [`TestbedSimulator::simulate_session_split`] does precisely that.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors; the range must be non-empty.
    pub fn simulate_session_range(
        &self,
        scenario: &Scenario,
        frames: std::ops::Range<u64>,
    ) -> Result<GroundTruthSession> {
        match self.engine {
            SimulationEngine::Scalar => self.simulate_session_range_scalar(scenario, frames),
            SimulationEngine::Batched { width } | SimulationEngine::FusedPoint { width } => {
                self.simulate_session_range_batched(scenario, frames, width)
            }
        }
    }

    /// The scalar reference implementation of
    /// [`TestbedSimulator::simulate_session_range`].
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors; the range must be non-empty.
    pub fn simulate_session_range_scalar(
        &self,
        scenario: &Scenario,
        frames: std::ops::Range<u64>,
    ) -> Result<GroundTruthSession> {
        Self::validate_range(&frames)?;
        // Validate before building SessionState: an invalid topology must
        // surface as an error here, not a panic in the site-map construction.
        scenario.validate()?;
        let mut session = SessionState::new(self, scenario);
        self.fast_forward_session(scenario, &mut session, frames.start);
        let frames = (frames.start + 1..=frames.end)
            .map(|i| self.simulate_frame_in_session(scenario, i, &mut session))
            .collect::<Result<Vec<_>>>()?;
        Ok(GroundTruthSession {
            frames,
            migration_time: session.migration_time,
            sites_visited: session.sites_visited(),
        })
    }

    /// Simulates one session as `chunks` contiguous frame ranges evaluated
    /// on scoped worker threads (one per chunk, clamped to the frame count)
    /// and stitches the parts back together: frames concatenate in order,
    /// and the cumulative session tallies come from the last range. Because
    /// [`TestbedSimulator::simulate_session_range`] fast-forwards the
    /// walker and replays the migration draws of the skipped prefix, the
    /// result is **bit-identical** to [`TestbedSimulator::simulate_session`]
    /// for every chunk count and either engine — this is the within-session
    /// parallelism seam the lane layer left open, closed.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors; `frames` must be at least 1.
    pub fn simulate_session_split(
        &self,
        scenario: &Scenario,
        frames: u64,
        chunks: usize,
    ) -> Result<GroundTruthSession> {
        if frames == 0 {
            return Err(xr_types::Error::invalid_parameter(
                "frames",
                "must be at least 1",
            ));
        }
        let chunks = (chunks.max(1) as u64).min(frames);
        if chunks == 1 {
            return self.simulate_session_range(scenario, 0..frames);
        }
        // Balanced contiguous ranges: the first `frames % chunks` ranges
        // take one extra frame.
        let base = frames / chunks;
        let extra = frames % chunks;
        let mut ranges = Vec::with_capacity(chunks as usize);
        let mut start = 0u64;
        for chunk in 0..chunks {
            let len = base + u64::from(chunk < extra);
            ranges.push(start..start + len);
            start += len;
        }
        let parts: Vec<Result<GroundTruthSession>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| scope.spawn(move || self.simulate_session_range(scenario, range)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("session-range worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(frames as usize);
        let mut migration_time = Seconds::ZERO;
        let mut sites_visited = 1;
        for part in parts {
            let part = part?;
            out.extend(part.frames);
            // Tallies are cumulative through each range's end, so the last
            // range's values are the whole-session values — summing partial
            // totals would re-associate the floating-point accumulation.
            migration_time = part.migration_time;
            sites_visited = part.sites_visited;
        }
        Ok(GroundTruthSession {
            frames: out,
            migration_time,
            sites_visited,
        })
    }

    /// Rejects empty frame ranges with a readable message.
    pub(crate) fn validate_range(frames: &std::ops::Range<u64>) -> Result<()> {
        if frames.start >= frames.end {
            return Err(xr_types::Error::invalid_parameter(
                "frames",
                format!("range {}..{} must be non-empty", frames.start, frames.end),
            ));
        }
        Ok(())
    }

    /// Fast-forwards a fresh [`SessionState`] through the first `skip`
    /// frames of a session without measuring them: per skipped frame the
    /// mobility walker advances one window (its stream is session-scoped
    /// and strictly sequential), and any inter-site migration replays its
    /// [`stream::MIGRATION`] draw so `migration_time` accumulates in exact
    /// frame order. Per-frame measurement streams (every other stage) are
    /// never touched — they are keyed by frame index and owe nothing to the
    /// frames before them. This is what makes
    /// [`TestbedSimulator::simulate_session_range`] bit-identical to the
    /// same frames of a whole-session run.
    pub(crate) fn fast_forward_session(
        &self,
        scenario: &Scenario,
        session: &mut SessionState,
        skip: u64,
    ) {
        if skip == 0 || !scenario.execution.uses_edge() || scenario.mobility.speed.as_f64() <= 0.0 {
            // Static or edge-free sessions never advance a walker (the
            // handoff stage is gated off), so there is nothing to replay.
            return;
        }
        let window = scenario.frame_window();
        let policy = scenario
            .topology
            .map_or(MigrationPolicy::Eager, |t| t.migration_policy);
        let migration_base = Self::migration_base(policy);
        for frame_index in 1..=skip {
            if let Some(topo) = session.topo.as_mut() {
                let events = topo.advance(window);
                session.site = topo.site_index();
                if events.crossings > 0 {
                    session.handoffs += events.crossings as u64;
                }
                if events.migrations > 0 {
                    session.migrations += events.migrations as u64;
                    let mut rng = self.stage_rng(stream::MIGRATION, frame_index);
                    let mut pairs = StandardNormalPairs::new();
                    session.migration_time += migration_base
                        * events.migrations as f64
                        * self.noise(&mut rng, &mut pairs);
                }
            } else if let Some(walker) = session.walker.as_mut() {
                session.handoffs += walker.advance(window) as u64;
            }
        }
    }
}

/// Session-scoped simulation state threaded through the staged frame
/// pipeline: the stateful mobility walker (present for a moving device),
/// the serving edge site of a multi-edge topology, and the handoff /
/// migration tallies.
#[derive(Debug, Clone)]
pub struct SessionState {
    pub(crate) walker: Option<RandomWalker>,
    /// The topology walker, replacing `walker` when the scenario roams a
    /// multi-edge map (a moving device gets exactly one of the two).
    pub(crate) topo: Option<TopologyWalker>,
    /// Index of the edge site currently serving the session (its start
    /// site for a static topologized device, 0 without a topology).
    pub(crate) site: usize,
    pub(crate) handoffs: u64,
    pub(crate) migrations: u64,
    pub(crate) migration_time: Seconds,
}

impl SessionState {
    /// Session state for `scenario` under `simulator`: a moving device gets
    /// a random walker with its own RNG stream (the session-scoped
    /// [`stream::WALKER`] stream, decorrelated from every per-frame
    /// measurement stream), starting from a uniformly random position in its
    /// coverage zone — the distribution the analytic `P(HO)` assumes. With a
    /// [`xr_core::TopologyConfig`] the walker is a [`TopologyWalker`] over
    /// the scenario's site map instead, seeded from the *same* stream (over
    /// a 1-site map it replays the legacy walker bit for bit); a static
    /// topologized device still attaches to the map's start site.
    ///
    /// # Panics
    ///
    /// Panics when the scenario carries a topology that fails
    /// [`Scenario::validate`] (non-positive tiled site density) — the
    /// session entry points validate first.
    #[must_use]
    pub fn new(simulator: &TestbedSimulator, scenario: &Scenario) -> Self {
        let moving = scenario.mobility.speed.as_f64() > 0.0;
        let map = TestbedSimulator::edge_topology(scenario);
        let (topo, site) = match &map {
            Some(map) => {
                let site = map.start_site();
                let topo = moving.then(|| {
                    let mut topo = map.walker(
                        scenario.mobility.speed,
                        Seconds::new(0.1),
                        stage_stream_seed(simulator.seed, stream::WALKER, 0),
                    );
                    topo.reset_uniform();
                    topo
                });
                (topo, site)
            }
            None => (None, 0),
        };
        let walker = (map.is_none() && moving).then(|| {
            let mobility = RandomWalkMobility::new(
                scenario.mobility.speed,
                Seconds::new(0.1),
                CoverageZone::new(scenario.mobility.coverage_radius),
            );
            let mut walker = mobility.walker(stage_stream_seed(simulator.seed, stream::WALKER, 0));
            walker.reset_uniform();
            walker
        });
        Self {
            walker,
            topo,
            site,
            handoffs: 0,
            migrations: 0,
            migration_time: Seconds::ZERO,
        }
    }

    /// State for a standalone frame outside any session: no walker, so the
    /// handoff stage falls back to the analytic Bernoulli draw (also for
    /// topologized scenarios, which need a session to roam the map).
    #[must_use]
    pub fn standalone() -> Self {
        Self {
            walker: None,
            topo: None,
            site: 0,
            handoffs: 0,
            migrations: 0,
            migration_time: Seconds::ZERO,
        }
    }

    /// Number of handoffs observed so far.
    #[must_use]
    pub fn handoff_count(&self) -> u64 {
        self.handoffs
    }

    /// Number of inter-site state migrations observed so far (always at
    /// most [`SessionState::handoff_count`]).
    #[must_use]
    pub fn migration_count(&self) -> u64 {
        self.migrations
    }

    /// Total state-migration latency paid so far.
    #[must_use]
    pub fn migration_time(&self) -> Seconds {
        self.migration_time
    }

    /// Index of the edge site currently serving the session.
    #[must_use]
    pub fn site_index(&self) -> usize {
        self.site
    }

    /// Number of distinct edge sites attached to so far (1 without a
    /// topology walker).
    #[must_use]
    pub fn sites_visited(&self) -> u32 {
        self.topo.as_ref().map_or(1, |t| t.sites_visited() as u32)
    }

    /// The mobility walker, when the device is moving and the state was
    /// built by [`SessionState::new`] without a topology.
    #[must_use]
    pub fn walker(&self) -> Option<&RandomWalker> {
        self.walker.as_ref()
    }

    /// The topology walker, when the device is moving across a multi-edge
    /// map.
    #[must_use]
    pub fn topology_walker(&self) -> Option<&TopologyWalker> {
        self.topo.as_ref()
    }
}

/// The resolved multi-tenant contention state of one scenario: per edge
/// server, the tagged session's task-share weight and the aggregate M/M/1
/// queue shared by the whole population. Produced by
/// [`TestbedSimulator::contention_snapshot`]; campaigns read utilisation and
/// expected contention delay from it without running any frames.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionSnapshot {
    users: u32,
    servers: Vec<(f64, EdgeContention)>,
    /// Per edge *site* of a multi-edge topology (site order): the site's
    /// tenant population and its repopulated per-server queues. Empty when
    /// the scenario keeps the single-zone model.
    sites: Vec<(u32, Vec<(f64, EdgeContention)>)>,
}

impl ContentionSnapshot {
    /// Number of sessions sharing each edge server.
    #[must_use]
    pub fn users(&self) -> u32 {
        self.users
    }

    /// Per edge server (scenario order): the tagged session's weight and
    /// the shared queue.
    #[must_use]
    pub fn servers(&self) -> &[(f64, EdgeContention)] {
        &self.servers
    }

    /// Per edge site of the scenario's multi-edge topology (site order):
    /// the site's tenant population and its per-server queues — what the
    /// tagged session's frames draw from while attached there. Empty when
    /// the scenario has no topology.
    #[must_use]
    pub fn site_queues(&self) -> &[(u32, Vec<(f64, EdgeContention)>)] {
        &self.sites
    }

    /// The most utilised edge queue — where the latency knee appears first.
    /// With a topology, the per-site queues compete too (the densest tenant
    /// population sets the knee).
    ///
    /// # Panics
    ///
    /// Never panics: a snapshot always holds at least one server.
    #[must_use]
    pub fn bottleneck(&self) -> &EdgeContention {
        self.servers
            .iter()
            .map(|(_, contention)| contention)
            .chain(
                self.sites
                    .iter()
                    .flat_map(|(_, queues)| queues.iter().map(|(_, contention)| contention)),
            )
            .max_by(|a, b| a.utilization().total_cmp(&b.utilization()))
            .expect("snapshot always holds at least one server")
    }

    /// Utilisation `ρ` of the bottleneck queue.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.bottleneck().utilization()
    }

    /// Expected contended remote-inference latency of the tagged session:
    /// the largest weighted mean sojourn across servers (exact for one
    /// server, a lower bound on the expected per-frame max for several).
    #[must_use]
    pub fn mean_contention_delay(&self) -> Seconds {
        self.servers
            .iter()
            .fold(Seconds::ZERO, |acc, &(weight, contention)| {
                acc.max(contention.mean_sojourn() * weight)
            })
    }
}

/// The per-frame sampling plan the contended edge stage executes: per edge
/// server, the tagged session's weight and the exponential sojourn
/// distribution with rate `µ − λ`. Both engines obtain it through
/// [`TestbedSimulator::contention_plan`] (the scalar reference per frame,
/// the batched engine once per session), so they cannot drift.
#[derive(Debug, Clone)]
pub(crate) struct ContentionPlan {
    pub(crate) pairs: Vec<(f64, Exp)>,
}

/// Per-frame working state of the staged pipeline: the frame's position in
/// the session (each stage derives its own RNG stream from it), the derived
/// operating-point quantities, and the accumulating per-segment latency map.
#[derive(Debug)]
struct FrameState<'a> {
    scenario: &'a Scenario,
    /// Frame index within the session; combined with the session seed and a
    /// stage id, it addresses every RNG stream of the frame.
    frame_index: u64,
    bias: DeviceBias,
    /// True compute resource of the client at this operating point.
    c_true: f64,
    memory: xr_types::GigaBytesPerSecond,
    uses_local: bool,
    uses_edge: bool,
    client_share: f64,
    edge_share: f64,
    /// Encoder workload (pixel-equivalents), produced by the encode stage
    /// and consumed by the edge-compute stage.
    encode_work: f64,
    /// Sampled input-buffer sojourn, produced by the buffer stage and
    /// consumed by the render stage.
    buffering: Seconds,
    /// Per-segment latency, indexed by `Segment::slot()` (stages write
    /// their slots; unwritten slots stay zero, like the old map's
    /// missing-entry default).
    latency: [Seconds; Segment::ALL.len()],
    handoff_occurred: bool,
}

impl<'a> FrameState<'a> {
    fn new(simulator: &TestbedSimulator, scenario: &'a Scenario, frame_index: u64) -> Self {
        let client = &scenario.client;
        let bias = DeviceBias::for_device(&client.name);
        Self {
            scenario,
            frame_index,
            bias,
            c_true: simulator.laws.compute_resource(
                client.cpu_clock,
                client.gpu_clock,
                client.cpu_share,
                bias,
            ),
            memory: client.memory_bandwidth,
            uses_local: scenario.execution.uses_client(),
            uses_edge: scenario.execution.uses_edge(),
            client_share: scenario.execution.client_share(),
            edge_share: scenario.execution.edge_share(),
            encode_work: 0.0,
            buffering: Seconds::ZERO,
            latency: [Seconds::ZERO; Segment::ALL.len()],
            handoff_occurred: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_core::{LatencyModel, Scenario};
    use xr_types::{ExecutionTarget, GigaHertz, MetersPerSecond};

    fn scenario(side: f64, clock: f64, target: ExecutionTarget) -> Scenario {
        Scenario::builder()
            .frame_side(side)
            .cpu_clock(GigaHertz::new(clock))
            .execution(target)
            .build()
            .unwrap()
    }

    #[test]
    fn simulator_is_shareable_across_campaign_workers() {
        // The xr-sweep campaign engine evaluates operating points on scoped
        // worker threads holding `&TestbedSimulator`; this locks in the
        // Send + Sync bound a future field (e.g. interior-mutable caches)
        // could silently break.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TestbedSimulator>();
        assert_send_sync::<GroundTruthSession>();
    }

    #[test]
    fn session_statistics_are_positive_and_stable() {
        let testbed = TestbedSimulator::new(1);
        let s = scenario(500.0, 2.5, ExecutionTarget::Local);
        let session = testbed.simulate_session(&s, 30).unwrap();
        assert_eq!(session.frames().len(), 30);
        assert!(session.mean_latency().as_f64() > 0.0);
        assert!(session.mean_energy().as_f64() > 0.0);
        assert!(session.latency_summary().std_dev() < session.latency_summary().mean());
        assert!(session.energy_summary().mean() > 0.0);
        assert_eq!(session.handoff_rate(), 0.0);
    }

    #[test]
    fn ground_truth_grows_with_frame_size_and_falls_with_clock() {
        let testbed = TestbedSimulator::new(2);
        for target in [ExecutionTarget::Local, ExecutionTarget::Remote] {
            let small = testbed
                .simulate_session(&scenario(300.0, 2.0, target), 20)
                .unwrap()
                .mean_latency();
            let large = testbed
                .simulate_session(&scenario(700.0, 2.0, target), 20)
                .unwrap()
                .mean_latency();
            assert!(large > small);
            let slow = testbed
                .simulate_session(&scenario(500.0, 1.0, target), 20)
                .unwrap()
                .mean_latency();
            let fast = testbed
                .simulate_session(&scenario(500.0, 3.0, target), 20)
                .unwrap()
                .mean_latency();
            assert!(fast < slow, "{target:?}: fast {fast} vs slow {slow}");
        }
    }

    #[test]
    fn remote_frames_skip_local_segments_and_vice_versa() {
        let testbed = TestbedSimulator::new(3);
        let remote = testbed
            .simulate_frame(&scenario(500.0, 2.5, ExecutionTarget::Remote), 1)
            .unwrap();
        assert_eq!(
            remote.segment_latency(Segment::LocalInference),
            Seconds::ZERO
        );
        assert!(remote.segment_latency(Segment::RemoteInference).as_f64() > 0.0);
        assert!(remote.segment_latency(Segment::Transmission).as_f64() > 0.0);
        let local = testbed
            .simulate_frame(&scenario(500.0, 2.5, ExecutionTarget::Local), 1)
            .unwrap();
        assert_eq!(
            local.segment_latency(Segment::RemoteInference),
            Seconds::ZERO
        );
        assert!(local.segment_latency(Segment::LocalInference).as_f64() > 0.0);
        assert!(local.segment_energy(Segment::LocalInference).as_f64() > 0.0);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let s = scenario(500.0, 2.0, ExecutionTarget::Remote);
        let a = TestbedSimulator::new(9).simulate_session(&s, 5).unwrap();
        let b = TestbedSimulator::new(9).simulate_session(&s, 5).unwrap();
        let c = TestbedSimulator::new(10).simulate_session(&s, 5).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn analytical_model_tracks_ground_truth_within_ten_percent() {
        // The published model (not even refit) should land in the right
        // ballpark because both follow the same pipeline structure.
        let testbed = TestbedSimulator::new(4);
        let model = LatencyModel::published();
        let s = scenario(500.0, 2.5, ExecutionTarget::Local);
        let gt = testbed.simulate_session(&s, 40).unwrap().mean_latency();
        let predicted = model.analyze(&s).unwrap().total();
        let rel = (gt.as_f64() - predicted.as_f64()).abs() / gt.as_f64();
        assert!(
            rel < 0.5,
            "relative gap {rel} too large (gt {gt}, model {predicted})"
        );
    }

    fn mobile_scenario(speed: f64, radius: f64) -> Scenario {
        Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .mobility(xr_core::MobilityConfig {
                speed: MetersPerSecond::new(speed),
                coverage_radius: xr_types::Meters::new(radius),
                handoff_kind: HandoffKind::Vertical,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn mobile_sessions_record_handoffs() {
        // Regression: a fast walker in a small zone must actually cross the
        // coverage boundary during a session — before the session loop
        // threaded a stateful walker, `handoff_rate` came from independent
        // per-frame Bernoulli draws and sessions never tracked real mobility.
        let testbed = TestbedSimulator::new(5);
        let session = testbed
            .simulate_session(&mobile_scenario(25.0, 8.0), 300)
            .unwrap();
        assert!(session.handoff_rate() > 0.0);
        assert!(session.handoff_rate() < 1.0);
    }

    #[test]
    fn session_handoffs_come_from_the_walker_and_scale_with_mobility() {
        let testbed = TestbedSimulator::new(6);
        // Static sessions never hand off.
        let static_session = testbed
            .simulate_session(&mobile_scenario(0.0, 8.0), 100)
            .unwrap();
        assert_eq!(static_session.handoff_rate(), 0.0);
        // A larger zone at the same speed hands off less often.
        let small = testbed
            .simulate_session(&mobile_scenario(25.0, 6.0), 400)
            .unwrap()
            .handoff_rate();
        let large = testbed
            .simulate_session(&mobile_scenario(25.0, 60.0), 400)
            .unwrap()
            .handoff_rate();
        assert!(
            small > large,
            "small-zone rate {small} should exceed large-zone rate {large}"
        );
    }

    #[test]
    fn session_state_tracks_handoffs_incrementally() {
        let testbed = TestbedSimulator::new(8);
        let s = mobile_scenario(25.0, 8.0);
        let mut state = SessionState::new(&testbed, &s);
        assert!(state.walker().is_some());
        let mut occurred = 0u64;
        for i in 1..=300 {
            let frame = testbed
                .simulate_frame_in_session(&s, i, &mut state)
                .unwrap();
            occurred += u64::from(frame.handoff_occurred);
        }
        assert_eq!(state.handoff_count(), occurred);
        assert!(occurred > 0);
        // Standalone state carries no walker and starts at zero.
        let standalone = SessionState::standalone();
        assert!(standalone.walker().is_none());
        assert_eq!(standalone.handoff_count(), 0);
    }

    #[test]
    fn standalone_mobile_frames_keep_the_bernoulli_fallback() {
        // Without a session walker the handoff stage still draws from the
        // analytic P(HO), so standalone frames of a mobile scenario can
        // hand off.
        let testbed = TestbedSimulator::new(5);
        let s = mobile_scenario(20.0, 30.0);
        let occurred = (1..=120)
            .map(|i| testbed.simulate_frame(&s, i).unwrap())
            .filter(|f| f.handoff_occurred)
            .count();
        assert!(occurred > 0);
        assert!(occurred < 120);
    }

    #[test]
    fn zero_frames_rejected_and_noise_control() {
        let testbed = TestbedSimulator::new(6).with_noise(0.0);
        let s = scenario(400.0, 2.0, ExecutionTarget::Local);
        assert!(testbed.simulate_session(&s, 0).is_err());
        let a = testbed.simulate_frame(&s, 1).unwrap();
        let b = testbed.simulate_frame(&s, 2).unwrap();
        // With zero measurement noise only the queueing/jitter terms differ.
        let gap = (a.segment_latency(Segment::FrameGeneration).as_f64()
            - b.segment_latency(Segment::FrameGeneration).as_f64())
        .abs();
        assert!(gap < 1e-12);
        assert!(testbed.laws().edge_speedup > 1.0);
    }

    fn contended_scenario(users: u32) -> Scenario {
        // A small frame at a relaxed frame rate: the default edge then hosts
        // ~10 sessions before the shared queue saturates, leaving room to
        // sweep the population on both sides of the knee.
        Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .frame_side(300.0)
            .frame_rate(xr_types::Hertz::new(5.0))
            .contention(users)
            .build()
            .unwrap()
    }

    #[test]
    fn contention_snapshot_reports_the_shared_queue() {
        let testbed = TestbedSimulator::new(11);
        // No contention configured, or no edge in the loop → no snapshot.
        assert!(testbed
            .contention_snapshot(&scenario(500.0, 2.5, ExecutionTarget::Local))
            .unwrap()
            .is_none());
        assert!(testbed
            .contention_snapshot(&scenario(500.0, 2.5, ExecutionTarget::Remote))
            .unwrap()
            .is_none());
        let local_contended = Scenario::builder().contention(4).build().unwrap();
        assert!(testbed
            .contention_snapshot(&local_contended)
            .unwrap()
            .is_none());

        let four = testbed
            .contention_snapshot(&contended_scenario(4))
            .unwrap()
            .unwrap();
        assert_eq!(four.users(), 4);
        assert_eq!(four.servers().len(), 1);
        let single = testbed
            .contention_snapshot(&contended_scenario(1))
            .unwrap()
            .unwrap();
        // Utilisation scales linearly in the population; the delay grows.
        assert!((four.utilization() / single.utilization() - 4.0).abs() < 1e-9);
        assert!(four.mean_contention_delay() > single.mean_contention_delay());
        // The shared service time is the noise-free factor of the edge stage.
        let (weight, queue) = &single.servers()[0];
        assert!((*weight - 1.0).abs() < 1e-12);
        assert!((queue.per_session_rate() - 5.0).abs() < 1e-12);
        assert!(queue.service_time().as_f64() > 0.0);
    }

    #[test]
    fn contended_sessions_slow_the_remote_stage_monotonically() {
        let testbed = TestbedSimulator::new(12);
        let single = testbed
            .contention_snapshot(&contended_scenario(1))
            .unwrap()
            .unwrap();
        // Users at which the shared queue saturates (ρ = 1).
        let capacity = 1.0 / single.utilization();
        assert!(capacity > 4.0, "default edge must host a small population");
        let mut last = Seconds::ZERO;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        for users in [1u32, (capacity * 0.5) as u32, (capacity * 0.9) as u32] {
            let session = testbed
                .simulate_session(&contended_scenario(users), 300)
                .unwrap();
            let remote = session.mean_segment_latency(Segment::RemoteInference);
            assert!(remote > last, "users {users}: {remote} vs {last}");
            last = remote;
        }
        // Past capacity the session refuses to run rather than diverge.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let over = capacity.ceil() as u32 + 1;
        let err = testbed
            .simulate_session(&contended_scenario(over), 4)
            .unwrap_err();
        assert!(matches!(err, xr_types::Error::UnstableQueue { .. }));
    }

    #[test]
    fn contended_sessions_are_deterministic_per_seed() {
        let s = contended_scenario(3);
        let a = TestbedSimulator::new(21).simulate_session(&s, 8).unwrap();
        let b = TestbedSimulator::new(21).simulate_session(&s, 8).unwrap();
        let c = TestbedSimulator::new(22).simulate_session(&s, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn energy_totals_include_base_and_thermal_overhead() {
        let testbed = TestbedSimulator::new(7);
        let s = scenario(500.0, 2.5, ExecutionTarget::Local);
        let frame = testbed.simulate_frame(&s, 1).unwrap();
        let sum_segments: f64 = Segment::ALL
            .iter()
            .filter(|seg| s.segments.contains(**seg))
            .map(|seg| frame.segment_energy(*seg).as_f64())
            .sum();
        // The measured total includes base power and thermal conversion, so
        // it must exceed the bare sum of included compute/radio segments that
        // actually ran (local segments only here).
        assert!(frame.total_energy.as_f64() > 0.5 * sum_segments);
    }
}
